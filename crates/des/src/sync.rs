//! Synchronization primitives for simulated entities.
//!
//! All primitives are single-threaded (the executor never runs two tasks at
//! once); they exist to express *ordering* between simulated tasks, not to
//! protect data from races.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A level-triggered notification flag: once [`Notify::set`] is called, all
/// current and future waiters proceed immediately.
#[derive(Clone, Default)]
pub struct Notify {
    state: Rc<RefCell<NotifyState>>,
}

#[derive(Default)]
struct NotifyState {
    set: bool,
    wakers: Vec<Waker>,
}

impl Notify {
    /// New unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the flag and wake all waiters.
    pub fn set(&self) {
        let mut st = self.state.borrow_mut();
        st.set = true;
        for w in st.wakers.drain(..) {
            w.wake();
        }
    }

    /// True if [`set`](Notify::set) has been called.
    pub fn is_set(&self) -> bool {
        self.state.borrow().set
    }

    /// Wait until the flag is set.
    pub fn wait(&self) -> NotifyWait {
        NotifyWait {
            state: Rc::clone(&self.state),
        }
    }
}

/// Future returned by [`Notify::wait`].
pub struct NotifyWait {
    state: Rc<RefCell<NotifyState>>,
}

impl Future for NotifyWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.borrow_mut();
        if st.set {
            Poll::Ready(())
        } else {
            st.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A counting semaphore with FIFO fairness.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<(u64, Waker)>,
    next_ticket: u64,
    next_to_serve: u64,
}

impl Semaphore {
    /// Create with `permits` initially available.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
                next_ticket: 0,
                next_to_serve: 0,
            })),
        }
    }

    /// Acquire one permit; resolves to a guard that releases on drop.
    pub async fn acquire(&self) -> SemaphoreGuard {
        let ticket = {
            let mut st = self.state.borrow_mut();
            let t = st.next_ticket;
            st.next_ticket += 1;
            t
        };
        Acquire {
            state: Rc::clone(&self.state),
            ticket,
        }
        .await;
        SemaphoreGuard {
            state: Rc::clone(&self.state),
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }
}

struct Acquire {
    state: Rc<RefCell<SemState>>,
    ticket: u64,
}

impl Future for Acquire {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.borrow_mut();
        if st.permits > 0 && self.ticket == st.next_to_serve {
            st.permits -= 1;
            st.next_to_serve += 1;
            Poll::Ready(())
        } else {
            // Re-register (replace any stale entry for this ticket).
            st.waiters.retain(|(t, _)| *t != self.ticket);
            st.waiters.push_back((self.ticket, cx.waker().clone()));
            Poll::Pending
        }
    }
}

/// Guard returned by [`Semaphore::acquire`]; releases its permit when dropped.
pub struct SemaphoreGuard {
    state: Rc<RefCell<SemState>>,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.permits += 1;
        if let Some((_, w)) = st.waiters.pop_front() {
            w.wake();
        }
    }
}

/// An N-party barrier: [`SimBarrier::wait`] resolves once all `n`
/// participants have arrived. Reusable across rounds.
#[derive(Clone)]
pub struct SimBarrier {
    state: Rc<RefCell<BarrierState>>,
}

struct BarrierState {
    n: usize,
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

impl SimBarrier {
    /// Barrier for `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SimBarrier {
            state: Rc::new(RefCell::new(BarrierState {
                n,
                arrived: 0,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Wait for all parties. Returns `true` for exactly one "leader" per round.
    pub async fn wait(&self) -> bool {
        let (gen, leader) = {
            let mut st = self.state.borrow_mut();
            st.arrived += 1;
            if st.arrived == st.n {
                st.arrived = 0;
                st.generation += 1;
                for w in st.wakers.drain(..) {
                    w.wake();
                }
                return true;
            }
            (st.generation, false)
        };
        BarrierWait {
            state: Rc::clone(&self.state),
            gen,
        }
        .await;
        leader
    }
}

struct BarrierWait {
    state: Rc<RefCell<BarrierState>>,
    gen: u64,
}

impl Future for BarrierWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.state.borrow_mut();
        if st.generation != self.gen {
            Poll::Ready(())
        } else {
            st.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn notify_wakes_waiters() {
        let mut sim = Sim::new(0);
        let n = Notify::new();
        let hit = Rc::new(RefCell::new(0));
        for _ in 0..3 {
            let n = n.clone();
            let hit = Rc::clone(&hit);
            sim.spawn(async move {
                n.wait().await;
                *hit.borrow_mut() += 1;
            });
        }
        let h = sim.handle();
        let n2 = n.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::from_us(1)).await;
            n2.set();
        });
        sim.run();
        assert_eq!(*hit.borrow(), 3);
    }

    #[test]
    fn notify_after_set_is_immediate() {
        let mut sim = Sim::new(0);
        let n = Notify::new();
        n.set();
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            n.wait().await;
            *d.borrow_mut() = true;
        });
        sim.run();
        assert!(*done.borrow());
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(2);
        let peak = Rc::new(RefCell::new((0usize, 0usize))); // (current, max)
        for _ in 0..6 {
            let sem = sem.clone();
            let peak = Rc::clone(&peak);
            let h = sim.handle();
            sim.spawn(async move {
                let _g = sem.acquire().await;
                {
                    let mut p = peak.borrow_mut();
                    p.0 += 1;
                    p.1 = p.1.max(p.0);
                }
                h.sleep(SimDuration::from_us(10)).await;
                peak.borrow_mut().0 -= 1;
            });
        }
        sim.run();
        assert_eq!(peak.borrow().1, 2);
    }

    #[test]
    fn semaphore_is_fifo() {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            let h = sim.handle();
            sim.spawn(async move {
                // Stagger arrivals so the queue order is well-defined.
                h.sleep(SimDuration::from_ns(i as u64)).await;
                let _g = sem.acquire().await;
                order.borrow_mut().push(i);
                h.sleep(SimDuration::from_us(1)).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn barrier_releases_together_and_reuses() {
        let mut sim = Sim::new(0);
        let bar = SimBarrier::new(3);
        let times = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let bar = bar.clone();
            let times = Rc::clone(&times);
            let h = sim.handle();
            sim.spawn(async move {
                for round in 0..2u64 {
                    h.sleep(SimDuration::from_us(i + 1)).await;
                    bar.wait().await;
                    times.borrow_mut().push((round, h.now().as_ps()));
                }
            });
        }
        sim.run();
        let times = times.borrow();
        // Within each round, all three release at the same instant.
        for round in 0..2u64 {
            let ts: Vec<u64> = times
                .iter()
                .filter(|(r, _)| *r == round)
                .map(|(_, t)| *t)
                .collect();
            assert_eq!(ts.len(), 3);
            assert!(ts.iter().all(|t| *t == ts[0]), "round {round}: {ts:?}");
        }
    }
}
