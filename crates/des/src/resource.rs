//! FIFO service-station resources.
//!
//! A [`FifoStation`] models a component that serializes work: requests are
//! served in arrival order by `k` identical servers, each request occupying a
//! server for a caller-supplied service time. The SeaStar NIC in VN mode (one
//! engine shared by two cores), the Lustre metadata server, and disk
//! controllers are all modelled this way.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::executor::SimHandle;
use crate::time::{SimDuration, SimTime};

/// A `k`-server FIFO queueing station.
///
/// Because requests are admitted in the order `serve` is *called* (at
/// simulated arrival time) and a request starting later can never be
/// scheduled before one that arrived earlier, the earliest-free-server
/// bookkeeping below implements an exact FCFS `G/G/k` station without any
/// explicit waiter queue.
#[derive(Clone)]
pub struct FifoStation {
    handle: SimHandle,
    state: Rc<RefCell<StationState>>,
}

struct StationState {
    /// Free-at times, one entry per server (min-heap).
    free_at: BinaryHeap<Reverse<SimTime>>,
    busy_time: SimDuration,
}

impl FifoStation {
    /// Create a station with `servers` identical servers.
    pub fn new(handle: SimHandle, servers: usize) -> Self {
        // xtsim-lint: allow(panic-propagation, "construction-time validation; stations are built at platform setup, never mid-event")
        assert!(servers >= 1, "a station needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        FifoStation {
            handle,
            state: Rc::new(RefCell::new(StationState {
                free_at,
                busy_time: SimDuration::ZERO,
            })),
        }
    }

    /// Enqueue a request needing `service` time; resolves when service completes.
    ///
    /// Returns the amount of time spent *waiting* (queueing delay), which
    /// callers can use for diagnostics.
    pub async fn serve(&self, service: SimDuration) -> SimDuration {
        let now = self.handle.now();
        let (end, waited) = {
            let mut st = self.state.borrow_mut();
            // The constructor guarantees >= 1 server and every pop is paired
            // with a push below, so an empty heap is unreachable; treating
            // it as free-now keeps this event-path helper infallible.
            let free = st.free_at.pop().map_or(SimTime::ZERO, |Reverse(t)| t);
            let start = free.max(now);
            let end = start + service;
            st.free_at.push(Reverse(end));
            st.busy_time += service;
            (end, start.duration_since(now))
        };
        self.handle.sleep_until(end).await;
        waited
    }

    /// Instant at which a request arriving now would *start* service.
    pub fn next_start(&self) -> SimTime {
        let st = self.state.borrow();
        let free = st.free_at.peek().map_or(SimTime::ZERO, |&Reverse(t)| t);
        free.max(self.handle.now())
    }

    /// Total service time dispensed so far (for utilization reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.state.borrow().busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn single_server_serializes() {
        let mut sim = Sim::new(0);
        let st = FifoStation::new(sim.handle(), 1);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let st = st.clone();
            let ends = Rc::clone(&ends);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimDuration::from_ns(i)).await; // arrive in order 0,1,2
                st.serve(SimDuration::from_us(10)).await;
                ends.borrow_mut().push((i, h.now().as_ps()));
            });
        }
        sim.run();
        let ends = ends.borrow();
        // Request i ends at ~ (i+1)*10us (plus its sub-ns arrival stagger
        // absorbed by queueing).
        assert_eq!(ends[0], (0, 10_000_000));
        assert_eq!(ends[1], (1, 20_000_000));
        assert_eq!(ends[2], (2, 30_000_000));
    }

    #[test]
    fn two_servers_run_two_at_once() {
        let mut sim = Sim::new(0);
        let st = FifoStation::new(sim.handle(), 2);
        let ends = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u64 {
            let st = st.clone();
            let ends = Rc::clone(&ends);
            let h = sim.handle();
            sim.spawn(async move {
                st.serve(SimDuration::from_us(10)).await;
                ends.borrow_mut().push((i, h.now().as_ps()));
            });
        }
        sim.run();
        let ts: Vec<u64> = ends.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(ts, vec![10_000_000, 10_000_000, 20_000_000, 20_000_000]);
    }

    #[test]
    fn idle_station_serves_immediately() {
        let mut sim = Sim::new(0);
        let st = FifoStation::new(sim.handle(), 1);
        let h = sim.handle();
        let st2 = st.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::from_us(100)).await;
            let waited = st2.serve(SimDuration::from_us(1)).await;
            assert_eq!(waited, SimDuration::ZERO);
            assert_eq!(h.now().as_ps(), 101_000_000);
        });
        sim.run();
    }

    #[test]
    fn busy_time_accumulates() {
        let mut sim = Sim::new(0);
        let st = FifoStation::new(sim.handle(), 1);
        let st2 = st.clone();
        sim.spawn(async move {
            st2.serve(SimDuration::from_us(3)).await;
            st2.serve(SimDuration::from_us(4)).await;
        });
        sim.run();
        assert_eq!(st.busy_time(), SimDuration::from_us(7));
    }
}
