//! # xtsim-des — deterministic discrete-event simulation engine
//!
//! The foundation of the Cray XT4 evaluation reproduction: a single-threaded
//! async executor driven by a virtual clock, plus the shared-resource models
//! every higher layer builds on.
//!
//! * [`Sim`] / [`SimHandle`] — event heap, task executor, timers, spawning,
//!   deterministic RNG streams.
//! * [`channel`] / [`oneshot`] — intra-simulation message queues.
//! * [`FifoStation`] — `k`-server FCFS queueing station (NICs, metadata
//!   servers, disks).
//! * [`FluidPool`] — max-min fair bandwidth sharing over capacitated links
//!   (torus links, memory controllers, injection ports).
//! * [`pdes`] — conservative parallel execution of a partitioned world
//!   (barrier epochs + [`mailbox`] SPSC channels), byte-identical to serial
//!   for any thread count.
//!
//! ## Example
//!
//! ```
//! use xtsim_des::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0);
//! let h = sim.handle();
//! sim.spawn(async move {
//!     h.sleep(SimDuration::from_us(3)).await;
//! });
//! let end = sim.run();
//! assert_eq!(end.as_ps(), 3_000_000);
//! ```

#![warn(missing_docs)]

mod channel;
mod combinators;
mod executor;
mod fluid;
pub mod mailbox;
pub mod pdes;
mod resource;
mod sync;
mod time;
pub mod trace;

pub use channel::{channel, oneshot, OneshotReceiver, OneshotSender, Receiver, RecvError, Sender};
pub use combinators::{join2, join_all, select2, Either, Join2, JoinAll, Select2};
pub use executor::{JoinHandle, Sim, SimHandle, Sleep, YieldNow};
pub use fluid::{FluidPool, LinkId, RebalanceStats, Transfer};
pub use resource::FifoStation;
pub use sync::{Notify, Semaphore, SemaphoreGuard, SimBarrier};
pub use trace::{Span, SpanCategory, TraceData, TraceEvent, TraceSummary, Tracer};
pub use time::{SimDuration, SimTime, PS_PER_SEC};
