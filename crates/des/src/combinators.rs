//! Minimal future combinators for single-threaded simulation code.
//!
//! The simulation deliberately avoids an external futures dependency; these
//! are the only combinators the higher layers need: joining concurrent
//! activities (compute overlapping communication) and racing two futures.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Await two futures concurrently; resolves when both are done.
pub fn join2<A, B>(a: A, b: B) -> Join2<A, B>
where
    A: Future,
    B: Future,
{
    Join2 {
        a: MaybeDone::Pending(a),
        b: MaybeDone::Pending(b),
    }
}

enum MaybeDone<F: Future> {
    Pending(F),
    Done(Option<F::Output>),
}

impl<F: Future> MaybeDone<F> {
    /// Polls the inner future if still pending; true when complete.
    fn poll_done(self: Pin<&mut Self>, cx: &mut Context<'_>) -> bool {
        // SAFETY: we never move the inner future out while pending; the
        // transition writes through the pinned mutable reference only after
        // the future has completed (and is dropped in place).
        unsafe {
            let this = self.get_unchecked_mut();
            match this {
                MaybeDone::Pending(f) => match Pin::new_unchecked(f).poll(cx) {
                    Poll::Ready(v) => {
                        *this = MaybeDone::Done(Some(v));
                        true
                    }
                    Poll::Pending => false,
                },
                MaybeDone::Done(_) => true,
            }
        }
    }

    fn take(self: Pin<&mut Self>) -> F::Output {
        // SAFETY: only the completed output is moved out; in the `Done` state
        // no pinned future remains, and the `Pending` arm never touches it.
        unsafe {
            let this = self.get_unchecked_mut();
            match this {
                MaybeDone::Done(v) => v.take().expect("output already taken"),
                MaybeDone::Pending(_) => panic!("future not complete"),
            }
        }
    }
}

/// Future returned by [`join2`].
pub struct Join2<A: Future, B: Future> {
    a: MaybeDone<A>,
    b: MaybeDone<B>,
}

impl<A: Future, B: Future> Future for Join2<A, B> {
    type Output = (A::Output, B::Output);
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: standard pin projection; fields are never moved.
        let (a_done, b_done) = unsafe {
            let this = self.as_mut().get_unchecked_mut();
            (
                Pin::new_unchecked(&mut this.a).poll_done(cx),
                Pin::new_unchecked(&mut this.b).poll_done(cx),
            )
        };
        if a_done && b_done {
            // SAFETY: same pin projection as above; both slots are `Done`, so
            // `take` moves only the outputs, never a pinned future.
            unsafe {
                let this = self.get_unchecked_mut();
                Poll::Ready((
                    Pin::new_unchecked(&mut this.a).take(),
                    Pin::new_unchecked(&mut this.b).take(),
                ))
            }
        } else {
            Poll::Pending
        }
    }
}

/// Await a homogeneous collection of futures; resolves to their outputs in
/// input order once all are done.
pub fn join_all<F: Future>(futures: impl IntoIterator<Item = F>) -> JoinAll<F> {
    JoinAll {
        entries: futures
            .into_iter()
            .map(|f| MaybeDone::Pending(f))
            .map(Box::pin)
            .collect(),
    }
}

/// Future returned by [`join_all`].
pub struct JoinAll<F: Future> {
    entries: Vec<Pin<Box<MaybeDone<F>>>>,
}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut all_done = true;
        for entry in &mut self.entries {
            if !entry.as_mut().poll_done(cx) {
                all_done = false;
            }
        }
        if all_done {
            let outs = self
                .entries
                .iter_mut()
                .map(|e| e.as_mut().take())
                .collect();
            Poll::Ready(outs)
        } else {
            Poll::Pending
        }
    }
}

/// Race two futures; resolves with the first to finish (the loser is dropped).
pub fn select2<A, B>(a: A, b: B) -> Select2<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    Select2 { a, b }
}

/// Which side of a [`select2`] finished first.
pub enum Either<A, B> {
    /// The first future won.
    Left(A),
    /// The second future won.
    Right(B),
}

/// Future returned by [`select2`].
pub struct Select2<A, B> {
    a: A,
    b: B,
}

impl<A: Future + Unpin, B: Future + Unpin> Future for Select2<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = Pin::new(&mut self.a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut self.b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn join2_waits_for_slowest() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let end = Rc::new(RefCell::new(0u64));
        let e = Rc::clone(&end);
        sim.spawn(async move {
            let a = h.sleep(SimDuration::from_us(3));
            let b = h.sleep(SimDuration::from_us(7));
            join2(a, b).await;
            *e.borrow_mut() = h.now().as_ps();
        });
        sim.run();
        assert_eq!(*end.borrow(), 7_000_000);
    }

    #[test]
    fn join_all_collects_in_order() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let out = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&out);
        sim.spawn(async move {
            let futs: Vec<_> = (0..4u64)
                .map(|i| {
                    let h = h.clone();
                    async move {
                        h.sleep(SimDuration::from_us(10 - i)).await;
                        i
                    }
                })
                .collect();
            *o.borrow_mut() = join_all(futs).await;
        });
        sim.run();
        assert_eq!(*out.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn select2_returns_winner() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let winner = Rc::new(RefCell::new(String::new()));
        let w = Rc::clone(&winner);
        sim.spawn(async move {
            let fast = h.sleep(SimDuration::from_us(1));
            let slow = h.sleep(SimDuration::from_us(5));
            match select2(fast, slow).await {
                Either::Left(()) => *w.borrow_mut() = "fast".into(),
                Either::Right(()) => *w.borrow_mut() = "slow".into(),
            }
            assert_eq!(h.now().as_ps(), 1_000_000);
        });
        sim.run();
        assert_eq!(*winner.borrow(), "fast");
    }

    #[test]
    fn join_all_empty_is_immediate() {
        let mut sim = Sim::new(0);
        sim.spawn(async move {
            let outs: Vec<u32> = join_all(Vec::<std::future::Ready<u32>>::new()).await;
            assert!(outs.is_empty());
        });
        sim.run();
    }
}
