//! Static dashboard generator: one self-contained HTML page with inline
//! SVG — no scripts, no external assets, viewable from `file://` or the
//! service's `GET /dashboard`.
//!
//! Two data sources, both optional:
//! * the run registry (wall-clock trend per figure across runs, outcome
//!   counts) — run-to-run deviations become visible as a kinked sparkline
//!   instead of a narrative;
//! * committed bench records (`BENCH_*.json` in the repo root) — median
//!   per bench compared across files as horizontal bars.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::Value;
use xtsim::sweep::CacheStats;

use crate::queue::QueueStats;

/// Escape text for an HTML/SVG context.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Compact number for labels: 3 significant-ish decimals, no trailing zeros.
fn fmt(v: f64) -> String {
    let s = format!("{v:.3}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Inline sparkline of `values` in order (left to right), auto-scaled.
fn sparkline(values: &[f64], w: u32, h: u32) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if (hi - lo).abs() < 1e-12 { 1.0 } else { hi - lo };
    let (wf, hf) = (f64::from(w), f64::from(h));
    let pts: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let x = if values.len() == 1 {
                wf / 2.0
            } else {
                2.0 + (wf - 4.0) * i as f64 / (values.len() - 1) as f64
            };
            let y = 2.0 + (hf - 4.0) * (1.0 - (v - lo) / span);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\" role=\"img\">\
         <polyline points=\"{}\" fill=\"none\" stroke=\"#2a6f97\" stroke-width=\"1.5\"/></svg>",
        pts.join(" ")
    )
}

/// Horizontal bar scaled against `max` with an inline value label.
fn bar(v: f64, max: f64, color: &str) -> String {
    let w = if max > 0.0 { (220.0 * v / max).max(1.0) } else { 1.0 };
    format!(
        "<svg width=\"300\" height=\"14\" viewBox=\"0 0 300 14\">\
         <rect x=\"0\" y=\"2\" width=\"{w:.1}\" height=\"10\" fill=\"{color}\"/>\
         <text x=\"{:.1}\" y=\"11\" font-size=\"10\" fill=\"#333\">{} ms</text></svg>",
        w + 4.0,
        fmt(v)
    )
}

/// Median-ish timing of one bench entry (plain runs record `median_ms`,
/// before/after runs record `after_ms`).
fn bench_ms(entry: &Value) -> Option<f64> {
    let o = entry.as_object()?;
    o.get("median_ms").or_else(|| o.get("after_ms")).and_then(Value::as_f64)
}

/// Load every `BENCH_*.json` under `root`, sorted by file name.
pub fn collect_bench_files(root: &Path) -> Vec<(String, Value)> {
    let Ok(rd) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    let mut names: Vec<String> = rd
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .filter_map(|n| {
            let text = std::fs::read_to_string(root.join(&n)).ok()?;
            let v = serde_json::from_str::<Value>(&text).ok()?;
            Some((n, v))
        })
        .collect()
}

/// Per-figure registry history: wall-clock per completed run, in append
/// order, plus outcome counts.
fn registry_by_figure(records: &[Value]) -> BTreeMap<String, (Vec<f64>, BTreeMap<String, u64>)> {
    let mut by_fig: BTreeMap<String, (Vec<f64>, BTreeMap<String, u64>)> = BTreeMap::new();
    for r in records {
        let Some(o) = r.as_object() else { continue };
        let Some(fig) = o.get("figure").and_then(Value::as_str) else { continue };
        let entry = by_fig.entry(fig.to_string()).or_default();
        if let Some(w) = o.get("wall_secs").and_then(Value::as_f64) {
            entry.0.push(w);
        }
        let outcome = o.get("outcome").and_then(Value::as_str).unwrap_or("unknown");
        *entry.1.entry(outcome.to_string()).or_insert(0) += 1;
    }
    by_fig
}

/// Render the full dashboard page.
///
/// `telemetry` is an explicit snapshot (not the live global registry) so
/// rendering stays a pure function of its inputs — the same-inputs,
/// same-bytes determinism test depends on it.
pub fn render(
    registry_records: &[Value],
    bench_files: &[(String, Value)],
    cache: Option<&CacheStats>,
    queue: Option<&QueueStats>,
    telemetry: Option<&xtsim_obs::Snapshot>,
) -> String {
    let mut page = String::from(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>xtsim dashboard</title><style>\
         body{font-family:system-ui,sans-serif;margin:2em;color:#222}\
         h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em;\
         border-bottom:1px solid #ccc;padding-bottom:.2em}\
         table{border-collapse:collapse;margin-top:.5em}\
         td,th{padding:.25em .7em;text-align:left;font-size:.9em;\
         border-bottom:1px solid #eee}th{color:#555}\
         .tiles{display:flex;gap:1.5em;margin-top:.5em}\
         .tile{border:1px solid #ddd;border-radius:6px;padding:.6em 1em}\
         .tile b{display:block;font-size:1.3em}\
         .muted{color:#777;font-size:.85em}</style></head><body>\
         <h1>xtsim — sweep service dashboard</h1>",
    );

    // --- stats tiles -------------------------------------------------------
    page.push_str("<div class=\"tiles\">");
    if let Some(q) = queue {
        for (label, v) in [
            ("runs done", q.done),
            ("queued", q.queued),
            ("running", q.running),
            ("rejected (429)", q.rejected),
        ] {
            page.push_str(&format!("<div class=\"tile\"><b>{v}</b>{label}</div>"));
        }
    }
    if let Some(c) = cache {
        page.push_str(&format!(
            "<div class=\"tile\"><b>{}</b>cache entries ({:.1} MiB)</div>",
            c.entries,
            c.bytes as f64 / (1024.0 * 1024.0)
        ));
        if c.mem_cap_bytes > 0 {
            page.push_str(&format!(
                "<div class=\"tile\"><b>{}</b>memory-tier entries \
                 ({:.1} / {:.0} MiB)</div>",
                c.mem_entries,
                c.mem_bytes as f64 / (1024.0 * 1024.0),
                c.mem_cap_bytes as f64 / (1024.0 * 1024.0)
            ));
        } else {
            page.push_str("<div class=\"tile\"><b>off</b>memory tier (disk only)</div>");
        }
    }
    page.push_str(&format!(
        "<div class=\"tile\"><b>{}</b>registry records</div></div>",
        registry_records.len()
    ));

    // --- registry trends ---------------------------------------------------
    page.push_str("<h2>Run registry — wall-clock per figure</h2>");
    let by_fig = registry_by_figure(registry_records);
    if by_fig.is_empty() {
        page.push_str("<p class=\"muted\">No registry records yet.</p>");
    } else {
        page.push_str(
            "<table><tr><th>figure</th><th>runs</th><th>last</th><th>min</th>\
             <th>max</th><th>trend</th><th>outcomes</th></tr>",
        );
        for (fig, (walls, outcomes)) in &by_fig {
            let (last, lo, hi) = if walls.is_empty() {
                ("-".to_string(), "-".to_string(), "-".to_string())
            } else {
                (
                    format!("{} s", fmt(*walls.last().unwrap())),
                    format!("{} s", fmt(walls.iter().copied().fold(f64::INFINITY, f64::min))),
                    format!("{} s", fmt(walls.iter().copied().fold(0.0f64, f64::max))),
                )
            };
            let outcome_text = outcomes
                .iter()
                .map(|(k, v)| format!("{}×{}", v, esc(k)))
                .collect::<Vec<_>>()
                .join(", ");
            page.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{last}</td><td>{lo}</td><td>{hi}</td>\
                 <td>{}</td><td>{outcome_text}</td></tr>",
                esc(fig),
                walls.len(),
                sparkline(walls, 160, 28),
            ));
        }
        page.push_str("</table>");
    }

    // --- telemetry ---------------------------------------------------------
    if let Some(snap) = telemetry {
        page.push_str("<h2>Telemetry (live metrics registry)</h2>");
        let hits = snap.counter_sum("xtsim_cache_lookups_total", &[("result", "hit")]);
        let mem_hits =
            snap.counter_sum("xtsim_cache_lookups_total", &[("result", "hit"), ("tier", "memory")]);
        let misses = snap.counter_sum("xtsim_cache_lookups_total", &[("result", "miss")]);
        let mismatches =
            snap.counter_sum("xtsim_cache_lookups_total", &[("result", "key_mismatch")]);
        let lookups = hits + misses + mismatches;
        page.push_str("<div class=\"tiles\">");
        if lookups > 0 {
            page.push_str(&format!(
                "<div class=\"tile\"><b>{}%</b>cache hit ratio ({hits}/{lookups} lookups)</div>",
                fmt(100.0 * hits as f64 / lookups as f64)
            ));
            page.push_str(&format!(
                "<div class=\"tile\"><b>{}%</b>memory-tier share of hits \
                 ({mem_hits}/{hits})</div>",
                if hits > 0 { fmt(100.0 * mem_hits as f64 / hits as f64) } else { fmt(0.0) }
            ));
        } else {
            page.push_str(
                "<div class=\"tile\"><b>&ndash;</b>cache hit ratio (no lookups yet)</div>",
            );
        }
        page.push_str(&format!(
            "<div class=\"tile\"><b>{}</b>memory-tier evictions ({} KiB resident)</div>",
            snap.counter_sum("xtsim_cache_mem_evictions_total", &[]),
            snap.gauge_value("xtsim_cache_mem_bytes").unwrap_or(0) / 1024
        ));
        page.push_str(&format!(
            "<div class=\"tile\"><b>{}</b>queue rejections (429)</div>",
            snap.counter_sum("xtsim_queue_rejected_total", &[])
        ));
        page.push_str(&format!(
            "<div class=\"tile\"><b>{}</b>HTTP requests</div></div>",
            snap.counter_sum("xtsim_http_requests_total", &[])
        ));

        page.push_str("<h2>Queue wait latency</h2>");
        let wait = snap
            .family("xtsim_queue_wait_seconds")
            .and_then(|f| f.series.first())
            .and_then(|s| match &s.value {
                xtsim_obs::SeriesValue::Histogram(h) if h.count > 0 => Some(h.clone()),
                _ => None,
            });
        match wait {
            None => page.push_str("<p class=\"muted\">No queued runs observed yet.</p>"),
            Some(h) => {
                let max = h.bucket_counts.iter().copied().max().unwrap_or(1).max(1) as f64;
                page.push_str(&format!(
                    "<p class=\"muted\">{} waits, mean {} s</p>\
                     <table><tr><th>&le; seconds</th><th>runs</th></tr>",
                    h.count,
                    fmt(h.mean())
                ));
                for (i, &n) in h.bucket_counts.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let le = xtsim_obs::metrics::BUCKET_BOUNDS
                        .get(i)
                        .map_or("+Inf".to_string(), |b| format!("{b}"));
                    let w = (220.0 * n as f64 / max).max(1.0);
                    page.push_str(&format!(
                        "<tr><td>{le}</td><td><svg width=\"300\" height=\"14\" \
                         viewBox=\"0 0 300 14\"><rect x=\"0\" y=\"2\" width=\"{w:.1}\" \
                         height=\"10\" fill=\"#43aa8b\"/><text x=\"{:.1}\" y=\"11\" \
                         font-size=\"10\" fill=\"#333\">{n}</text></svg></td></tr>",
                        w + 4.0
                    ));
                }
                page.push_str("</table>");
            }
        }
    }

    // --- bench medians -----------------------------------------------------
    page.push_str("<h2>Bench medians (committed BENCH_*.json)</h2>");
    if bench_files.is_empty() {
        page.push_str("<p class=\"muted\">No bench records found.</p>");
    } else {
        // Union of bench names across files, each compared side by side.
        let mut by_bench: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for (fname, rec) in bench_files {
            let Some(benches) = rec.as_object().and_then(|o| o.get("benches")).and_then(Value::as_object)
            else {
                continue;
            };
            for (bench, entry) in benches {
                if let Some(ms) = bench_ms(entry) {
                    by_bench.entry(bench.clone()).or_default().push((fname.clone(), ms));
                }
            }
        }
        page.push_str("<table><tr><th>bench</th><th>file</th><th>median</th></tr>");
        for (bench, rows) in &by_bench {
            let max = rows.iter().map(|(_, ms)| *ms).fold(0.0f64, f64::max);
            for (i, (fname, ms)) in rows.iter().enumerate() {
                let name = if i == 0 { esc(bench) } else { String::new() };
                page.push_str(&format!(
                    "<tr><td>{name}</td><td class=\"muted\">{}</td><td>{}</td></tr>",
                    esc(fname),
                    bar(*ms, max, "#577590"),
                ));
            }
        }
        page.push_str("</table>");
    }

    page.push_str("</body></html>");
    page
}

/// One-shot mode: write the dashboard as `index.html` under `dir`.
pub fn write_to(dir: &Path, html: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("index.html");
    std::fs::write(&path, html)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(figure: &str, wall: f64, outcome: &str) -> Value {
        let mut m = BTreeMap::new();
        m.insert("figure".to_string(), figure.into());
        m.insert("wall_secs".to_string(), wall.into());
        m.insert("outcome".to_string(), outcome.into());
        Value::Object(m)
    }

    #[test]
    fn renders_registry_trends_and_bench_bars() {
        let records = vec![rec("fig02", 1.0, "done"), rec("fig02", 1.4, "done"), rec("fig12", 0.2, "failed")];
        let bench = serde_json::from_str::<Value>(
            "{\"schema\":\"xtsim-bench-v1\",\"benches\":{\"fluid_pool/flows_1k\":{\"median_ms\":12.5,\"iters\":5}}}",
        )
        .unwrap();
        let html = render(&records, &[("BENCH_X.json".to_string(), bench)], None, None, None);
        assert!(html.contains("<svg"), "no inline SVG rendered");
        assert!(html.contains("fig02") && html.contains("fig12"));
        assert!(html.contains("fluid_pool/flows_1k"));
        assert!(html.contains("12.5 ms"));
        assert!(html.contains("1×failed"));
        // Deterministic: same inputs, same bytes.
        let again = render(&records, &[], None, None, None);
        let again2 = render(&records, &[], None, None, None);
        assert_eq!(again, again2);
    }

    #[test]
    fn telemetry_panel_renders_hit_ratio_and_wait_histogram() {
        // A private registry keeps this test independent of whatever other
        // tests did to the process-global one.
        let reg = xtsim_obs::Registry::new();
        reg.counter_with("xtsim_cache_lookups_total", "h", &[("result", "hit")]).add(3);
        reg.counter_with("xtsim_cache_lookups_total", "h", &[("result", "miss")]).add(1);
        let wait = reg.histogram("xtsim_queue_wait_seconds", "h");
        wait.observe(0.004);
        wait.observe(0.004);
        wait.observe(1.3);
        let snap = reg.snapshot();

        let html = render(&[], &[], None, None, Some(&snap));
        assert!(html.contains("cache hit ratio"), "hit-ratio tile missing");
        assert!(html.contains("75%"), "3/4 lookups must render as 75%: {html}");
        assert!(html.contains("Queue wait latency"));
        assert!(html.contains("<td>0.005</td>"), "0.004s waits land in the 5ms bucket");
        assert!(html.contains(">2</text>"), "bucket count 2 must appear in the bar label");
        // Deterministic for a fixed snapshot.
        assert_eq!(
            render(&[], &[], None, None, Some(&snap)),
            render(&[], &[], None, None, Some(&snap))
        );

        // An empty snapshot renders placeholders, not panics.
        let empty = xtsim_obs::Registry::new().snapshot();
        let html = render(&[], &[], None, None, Some(&empty));
        assert!(html.contains("no lookups yet"));
        assert!(html.contains("No queued runs observed yet"));
    }

    #[test]
    fn one_shot_writes_index_html() {
        let dir = std::env::temp_dir().join(format!("xtsim-dash-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_to(&dir, "<html></html>").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "<html></html>");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sparkline_handles_degenerate_inputs() {
        assert_eq!(sparkline(&[], 100, 20), "");
        assert!(sparkline(&[5.0], 100, 20).contains("polyline"));
        assert!(sparkline(&[3.0, 3.0, 3.0], 100, 20).contains("polyline"));
    }
}
