#![forbid(unsafe_code)]
//! # xtsim-serve — long-running sweep service over the cached figure engine
//!
//! Turns the one-shot `figures` CLI into the "heavy traffic" architecture:
//! many concurrent clients submitting scenario requests against one shared
//! content-addressed result cache. Dependency-free by construction — the
//! HTTP layer is hand-rolled on `std::net` in the spirit of the offline
//! compat shims.
//!
//! Layer map:
//!
//! * [`http`] — minimal HTTP/1.1 request/response parsing;
//! * [`queue`] — bounded run queue, admission control (429 when full), and
//!   a fixed worker pool capping concurrent figure runs;
//! * [`registry`] — append-only JSONL run registry (`results/registry/`),
//!   one self-describing record per completed run;
//! * [`dashboard`] — static HTML/inline-SVG dashboard from registry
//!   history and committed `BENCH_*.json` records;
//! * [`server`] — route dispatch tying it all together, plus the
//!   production executor whose results are byte-identical to the
//!   `figures` CLI artifacts.

#![warn(missing_docs)]

pub mod dashboard;
pub mod http;
pub mod queue;
pub mod registry;
pub mod server;
