//! Bounded run queue with admission control and a fixed worker pool.
//!
//! The service must protect the machine it runs on: a burst of clients may
//! not queue unbounded work (memory) nor run unbounded figures at once
//! (CPU). [`Scheduler::submit`] therefore rejects — the HTTP layer turns
//! that into a 429 — once `queue_capacity` runs are waiting, and at most
//! `workers` figure runs execute concurrently.
//!
//! The executor is injected as a closure so tests can drive admission
//! control with a blocking stub instead of real multi-second figure runs.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use serde::impl_serde_struct;
use xtsim::report::Scale;
use xtsim::sweep::FigureMetrics;

/// Queue telemetry handles (process-wide, registered once). Wall-clock
/// only — the queue is pure harness, nothing here touches simulated time.
struct QueueMetrics {
    wait_seconds: Arc<xtsim_obs::Histogram>,
    service_seconds: Arc<xtsim_obs::Histogram>,
    rejected: Arc<xtsim_obs::Counter>,
}

fn queue_metrics() -> &'static QueueMetrics {
    static M: OnceLock<QueueMetrics> = OnceLock::new();
    M.get_or_init(|| QueueMetrics {
        wait_seconds: xtsim_obs::histogram(
            "xtsim_queue_wait_seconds",
            "Time a run sat in the bounded queue before a worker claimed it.",
        ),
        service_seconds: xtsim_obs::histogram(
            "xtsim_queue_service_seconds",
            "Time a worker spent executing a claimed run.",
        ),
        rejected: xtsim_obs::counter(
            "xtsim_queue_rejected_total",
            "Submissions turned away by admission control (HTTP 429).",
        ),
    })
}

/// One scenario request: which figure, at what scale, with what engine knobs.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Figure or ablation id, e.g. `"fig02"` (validated before submit).
    pub figure: String,
    /// Sweep scale.
    pub scale: Scale,
    /// Sweep worker threads for this run.
    pub jobs: usize,
    /// DES worker-thread budget advertised to each job.
    pub des_threads: usize,
}

/// Lifecycle of a submitted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Waiting in the bounded queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; the result JSON is available.
    Done,
    /// The executor reported an error.
    Failed,
}

impl RunStatus {
    /// Lower-case label used in API responses and registry records.
    pub fn label(self) -> &'static str {
        match self {
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Done => "done",
            RunStatus::Failed => "failed",
        }
    }
}

/// What the executor hands back for a completed run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Pretty-printed figure JSON, byte-identical to the `figures` CLI's
    /// `<id>.json` artifact for the same request.
    pub result_json: String,
    /// Wall-clock seconds for the figure run.
    pub wall_secs: f64,
    /// Jobs executed this run.
    pub computed: u64,
    /// Jobs answered from the cache.
    pub cached: u64,
    /// Cache entries rejected on key verification.
    pub key_mismatches: u64,
    /// Per-figure metrics record.
    pub metrics: Option<FigureMetrics>,
}

/// Full state of one run as tracked by the scheduler.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Monotonic run id (scoped to this service process).
    pub id: u64,
    /// The request as admitted.
    pub request: RunRequest,
    /// Current lifecycle state.
    pub status: RunStatus,
    /// Executor output once `status` is `Done`.
    pub output: Option<RunOutput>,
    /// Error text once `status` is `Failed`.
    pub error: Option<String>,
    /// Seconds the run sat queued before a worker claimed it (set when the
    /// run leaves `Queued`).
    pub wait_secs: Option<f64>,
    /// Seconds the executor spent on the run (set when it finishes, for
    /// `Done` and `Failed` alike).
    pub exec_secs: Option<f64>,
}

/// Queue-level counters for `/stats`.
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Runs waiting in the queue right now.
    pub queued: u64,
    /// Runs executing right now.
    pub running: u64,
    /// Runs finished successfully since startup.
    pub done: u64,
    /// Runs failed since startup.
    pub failed: u64,
    /// Submissions rejected by admission control since startup.
    pub rejected: u64,
    /// Queue capacity (admission-control threshold).
    pub capacity: u64,
    /// Concurrent-run cap (worker count).
    pub workers: u64,
}

impl_serde_struct!(QueueStats { queued, running, done, failed, rejected, capacity, workers });

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is full — retry later (HTTP 429).
    QueueFull,
}

/// The run executor: performs the actual figure run for an admitted
/// request. Receives the run id (to stamp registry records) and the
/// measured queue wait in seconds (so records can carry `wait_secs` —
/// the scheduler is the only party that knows it).
pub type Executor =
    Arc<dyn Fn(u64, &RunRequest, f64) -> Result<RunOutput, String> + Send + Sync>;

struct State {
    queue: VecDeque<u64>,
    /// Submission instants for queued runs, keyed by id; consumed when a
    /// worker claims the run to produce `wait_secs`.
    submitted: BTreeMap<u64, Instant>,
    runs: BTreeMap<u64, RunRecord>,
    next_id: u64,
    running: u64,
    done: u64,
    failed: u64,
    rejected: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
}

/// Bounded-queue scheduler over a fixed worker pool.
pub struct Scheduler {
    shared: Arc<Shared>,
    capacity: usize,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Start `workers` worker threads servicing a queue of at most
    /// `capacity` waiting runs, executing admitted requests with `exec`.
    pub fn new(capacity: usize, workers: usize, exec: Executor) -> Scheduler {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                submitted: BTreeMap::new(),
                runs: BTreeMap::new(),
                next_id: 1,
                running: 0,
                done: 0,
                failed: 0,
                rejected: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let exec = Arc::clone(&exec);
                std::thread::spawn(move || worker_loop(&shared, &exec))
            })
            .collect();
        Scheduler { shared, capacity: capacity.max(1), workers: handles }
    }

    /// Admit `request` if the queue has room; returns its run id.
    pub fn submit(&self, request: RunRequest) -> Result<u64, Rejected> {
        let mut st = self.shared.state.lock().unwrap();
        if st.queue.len() >= self.capacity {
            st.rejected += 1;
            queue_metrics().rejected.inc();
            return Err(Rejected::QueueFull);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.runs.insert(
            id,
            RunRecord {
                id,
                request,
                status: RunStatus::Queued,
                output: None,
                error: None,
                wait_secs: None,
                exec_secs: None,
            },
        );
        st.submitted.insert(id, Instant::now());
        st.queue.push_back(id);
        drop(st);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Snapshot of one run's state.
    pub fn run(&self, id: u64) -> Option<RunRecord> {
        self.shared.state.lock().unwrap().runs.get(&id).cloned()
    }

    /// Snapshot of every run, in id (submission) order.
    pub fn runs(&self) -> Vec<RunRecord> {
        self.shared.state.lock().unwrap().runs.values().cloned().collect()
    }

    /// Queue counters for `/stats`.
    pub fn stats(&self) -> QueueStats {
        let st = self.shared.state.lock().unwrap();
        QueueStats {
            queued: st.queue.len() as u64,
            running: st.running,
            done: st.done,
            failed: st.failed,
            rejected: st.rejected,
            capacity: self.capacity as u64,
            workers: self.workers.len() as u64,
        }
    }

    /// Stop accepting queued work and join the workers. Queued-but-unstarted
    /// runs stay `Queued` forever; callers only use this on process exit and
    /// in tests.
    pub fn shutdown(mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, exec: &Executor) {
    loop {
        let (id, request, wait) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    st.running += 1;
                    let wait = st
                        .submitted
                        .remove(&id)
                        .map(|t| t.elapsed().as_secs_f64())
                        .unwrap_or(0.0);
                    queue_metrics().wait_seconds.observe(wait);
                    let rec = st.runs.get_mut(&id).expect("queued run exists");
                    rec.status = RunStatus::Running;
                    rec.wait_secs = Some(wait);
                    break (id, rec.request.clone(), wait);
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let started = Instant::now();
        let outcome = exec(id, &request, wait);
        let exec_secs = started.elapsed().as_secs_f64();
        queue_metrics().service_seconds.observe(exec_secs);
        let mut st = shared.state.lock().unwrap();
        st.running -= 1;
        let rec = st.runs.get_mut(&id).expect("running run exists");
        rec.exec_secs = Some(exec_secs);
        match outcome {
            Ok(out) => {
                rec.status = RunStatus::Done;
                rec.output = Some(out);
                st.done += 1;
            }
            Err(e) => {
                rec.status = RunStatus::Failed;
                rec.error = Some(e);
                st.failed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn wait_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not reached within 10s");
    }

    fn instant_exec() -> Executor {
        Arc::new(|_id, req: &RunRequest, _wait: f64| {
            Ok(RunOutput {
                result_json: format!("{{\"id\":\"{}\"}}", req.figure),
                wall_secs: 0.0,
                computed: 1,
                cached: 0,
                key_mismatches: 0,
                metrics: None,
            })
        })
    }

    fn req(figure: &str) -> RunRequest {
        RunRequest { figure: figure.into(), scale: Scale::Quick, jobs: 1, des_threads: 1 }
    }

    #[test]
    fn runs_complete_and_keep_results() {
        let sched = Scheduler::new(8, 2, instant_exec());
        let a = sched.submit(req("fig01")).unwrap();
        let b = sched.submit(req("fig02")).unwrap();
        assert_ne!(a, b);
        wait_until(|| {
            [a, b].iter().all(|id| sched.run(*id).unwrap().status == RunStatus::Done)
        });
        let rec = sched.run(b).unwrap();
        assert_eq!(rec.output.unwrap().result_json, "{\"id\":\"fig02\"}");
        assert!(rec.wait_secs.is_some(), "completed run must expose queue wait");
        assert!(rec.exec_secs.is_some(), "completed run must expose exec time");
        assert!(rec.wait_secs.unwrap() >= 0.0 && rec.exec_secs.unwrap() >= 0.0);
        let stats = sched.stats();
        assert_eq!((stats.done, stats.failed, stats.queued), (2, 0, 0));
        sched.shutdown();
    }

    #[test]
    fn queue_full_rejects_then_drains_and_accepts() {
        // Executor blocks until released, so the queue fills deterministically.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let exec: Executor = {
            let release_rx = Arc::clone(&release_rx);
            Arc::new(move |_id, req: &RunRequest, _wait: f64| {
                release_rx.lock().unwrap().recv().map_err(|e| e.to_string())?;
                Ok(RunOutput {
                    result_json: req.figure.clone(),
                    wall_secs: 0.0,
                    computed: 0,
                    cached: 0,
                    key_mismatches: 0,
                    metrics: None,
                })
            })
        };
        let sched = Scheduler::new(2, 1, exec);
        // One run occupies the worker; wait for it to leave the queue.
        let running = sched.submit(req("r0")).unwrap();
        wait_until(|| sched.run(running).unwrap().status == RunStatus::Running);
        // Two more fill the bounded queue...
        sched.submit(req("q1")).unwrap();
        sched.submit(req("q2")).unwrap();
        // ...and the next submission is turned away (HTTP 429).
        assert_eq!(sched.submit(req("q3")), Err(Rejected::QueueFull));
        assert_eq!(sched.stats().rejected, 1);
        assert_eq!(sched.stats().queued, 2);

        // Release every blocked/queued run; the queue drains...
        for _ in 0..3 {
            release_tx.send(()).unwrap();
        }
        wait_until(|| sched.stats().done == 3);
        // ...and admission opens back up.
        let id = sched.submit(req("q4")).unwrap();
        release_tx.send(()).unwrap();
        wait_until(|| sched.run(id).unwrap().status == RunStatus::Done);
        sched.shutdown();
    }

    #[test]
    fn executor_errors_mark_runs_failed() {
        let exec: Executor = Arc::new(|_id, _: &RunRequest, _wait: f64| Err("boom".to_string()));
        let sched = Scheduler::new(4, 1, exec);
        let id = sched.submit(req("fig01")).unwrap();
        wait_until(|| sched.run(id).unwrap().status == RunStatus::Failed);
        assert_eq!(sched.run(id).unwrap().error.as_deref(), Some("boom"));
        assert!(sched.run(id).unwrap().exec_secs.is_some(), "failed runs are timed too");
        assert_eq!(sched.stats().failed, 1);
        sched.shutdown();
    }
}
