//! Route dispatch and service wiring: ties the HTTP layer to the
//! scheduler, registry, cache, and dashboard.
//!
//! The figure-id validation is *shared* with the `figures` CLI
//! ([`xtsim::cli::select_figures`]): an id the CLI rejects with exit 2 is
//! exactly an id this service rejects with 404 — the two front ends cannot
//! drift.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::Value;
use xtsim::ablations::all_ablations;
use xtsim::cli::{parse_scale, select_figures};
use xtsim::figures::{all_figures, Figure};
use xtsim::report::Scale;
use xtsim::sweep::{run_figure, DiskCache, SweepConfig, ENGINE_VERSION};

use crate::dashboard;
use crate::http::{read_request, write_response, Request, Response};
use crate::queue::{Executor, Rejected, RunRecord, RunRequest, RunStatus, Scheduler};
use crate::registry::{make_record, Registry};

/// Everything a request handler needs; shared across connection threads.
pub struct AppState {
    /// Bounded-queue scheduler executing admitted runs.
    pub scheduler: Scheduler,
    /// Durable run registry, when enabled (shared with the executor).
    pub registry: Option<Arc<Registry>>,
    /// Cache directory (for `/stats`), when caching is enabled.
    pub cache_dir: Option<PathBuf>,
    /// Memory hot-tier byte budget for the result cache (0 = disk only).
    pub cache_mem_cap: u64,
    /// Directory scanned for `BENCH_*.json` (the repo root).
    pub bench_root: PathBuf,
    /// Default sweep worker threads for requests that don't specify `jobs`.
    pub default_jobs: usize,
    /// Service start time, for `/stats` uptime.
    pub started: Instant,
}

/// The full figure catalog the service exposes: paper figures plus
/// ablations (the CLI gates ablations behind `--ablations`; the service
/// names them explicitly, so they are always addressable).
pub fn catalog() -> Vec<Figure> {
    let mut figs = all_figures();
    figs.extend(all_ablations());
    figs
}

/// Seconds since the Unix epoch (service-side timestamp for registry
/// records; never feeds simulated numbers).
pub fn unix_now() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// The production executor: run the figure through the cached sweep engine
/// exactly as the `figures` CLI does, then append the outcome to the
/// registry. The result JSON is `serde_json::to_string_pretty` of the
/// [`xtsim::report::FigureResult`] — byte-identical to the CLI's
/// `<id>.json` artifact for the same (figure, scale, des-threads).
pub fn figure_executor(
    cache_dir: Option<PathBuf>,
    cache_mem_cap: u64,
    registry: Option<Arc<Registry>>,
) -> Executor {
    Arc::new(move |id: u64, req: &RunRequest, wait_secs: f64| {
        let run = || -> Result<crate::queue::RunOutput, String> {
            let fig = catalog()
                .into_iter()
                .find(|f| f.id == req.figure)
                .ok_or_else(|| format!("unknown figure id: {}", req.figure))?;
            let mut cfg = SweepConfig::threads(req.jobs)
                .with_des_threads(req.des_threads)
                .with_metrics();
            if let Some(dir) = &cache_dir {
                // The memory hot tier is process-wide per cache directory,
                // so every run (and every concurrent client) shares it; the
                // cap is (re)applied here in case it changed.
                match DiskCache::with_mem_cap(dir, cache_mem_cap) {
                    Ok(cache) => cfg = cfg.with_cache(cache),
                    Err(e) => xtsim_obs::events::warn(
                        "xtsim_serve::executor",
                        &format!(
                            "cannot open cache at {}: {e}; running uncached",
                            dir.display()
                        ),
                        &[("run_id", &id.to_string()), ("cache_dir", &dir.display().to_string())],
                    ),
                }
            }
            let (result, stats) = run_figure(fig.spec(req.scale), &cfg);
            let result_json =
                serde_json::to_string_pretty(&result).map_err(|e| format!("serialize: {e:?}"))?;
            Ok(crate::queue::RunOutput {
                result_json,
                wall_secs: stats.wall.as_secs_f64(),
                computed: stats.computed as u64,
                cached: stats.cached as u64,
                key_mismatches: stats.key_mismatches as u64,
                metrics: stats.metrics,
            })
        };
        let started = Instant::now();
        let outcome = run();
        let exec_secs = started.elapsed().as_secs_f64();
        if let Err(e) = &outcome {
            xtsim_obs::events::error(
                "xtsim_serve::executor",
                &format!("run {id} ({}) failed: {e}", req.figure),
                &[("run_id", &id.to_string()), ("figure", &req.figure)],
            );
        }
        if let Some(reg) = &registry {
            // Record the outcome either way; a failed run is history too.
            let rec = RunRecord {
                id,
                request: req.clone(),
                status: if outcome.is_ok() { RunStatus::Done } else { RunStatus::Failed },
                output: outcome.as_ref().ok().cloned(),
                error: outcome.as_ref().err().cloned(),
                wait_secs: Some(wait_secs),
                exec_secs: Some(exec_secs),
            };
            if let Err(e) = reg.append(&make_record(&rec, unix_now())) {
                xtsim_obs::events::warn(
                    "xtsim_serve::executor",
                    &format!("registry append failed: {e}"),
                    &[("run_id", &id.to_string())],
                );
            }
        }
        outcome
    })
}

// ------------------------------------------------------------------ routing

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn json_response(status: u16, v: &Value) -> Response {
    Response::json(status, serde_json::to_string_pretty(v).expect("value serializes"))
}

/// Public envelope for one run (the result body itself lives under
/// `/runs/<id>/result` so it can stay byte-identical to the CLI artifact).
fn run_envelope(rec: &RunRecord) -> Value {
    let mut fields = vec![
        ("id", rec.id.into()),
        ("figure", rec.request.figure.as_str().into()),
        ("scale", rec.request.scale.label().into()),
        ("jobs", rec.request.jobs.into()),
        ("des_threads", rec.request.des_threads.into()),
        ("status", rec.status.label().into()),
    ];
    if let Some(w) = rec.wait_secs {
        fields.push(("wait_secs", w.into()));
    }
    if let Some(e) = rec.exec_secs {
        fields.push(("exec_secs", e.into()));
    }
    if let Some(out) = &rec.output {
        fields.push(("wall_secs", out.wall_secs.into()));
        fields.push(("computed", out.computed.into()));
        fields.push(("cached", out.cached.into()));
        fields.push(("result", format!("/runs/{}/result", rec.id).into()));
    }
    if let Some(e) = &rec.error {
        fields.push(("error", e.as_str().into()));
    }
    obj(fields)
}

/// Parse and validate a `POST /runs` body into a [`RunRequest`].
fn parse_run_request(body: &[u8], default_jobs: usize) -> Result<RunRequest, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "body must be UTF-8 JSON"))?;
    let v = serde_json::from_str::<Value>(text)
        .map_err(|_| Response::error(400, "body must be a JSON object"))?;
    let o = v
        .as_object()
        .ok_or_else(|| Response::error(400, "body must be a JSON object"))?;

    let figure = o
        .get("figure")
        .and_then(Value::as_str)
        .ok_or_else(|| Response::error(400, "missing required field \"figure\""))?
        .to_string();
    // Same validation as `figures --only`: unknown ids are listed, 404.
    if let Err(unknown) = select_figures(catalog(), std::slice::from_ref(&figure)) {
        return Err(Response::error(
            404,
            &format!("unknown figure id(s): {}", unknown.join(", ")),
        ));
    }

    let scale = match o.get("scale") {
        None | Some(Value::Null) => Scale::Quick,
        Some(v) => v
            .as_str()
            .and_then(parse_scale)
            .ok_or_else(|| Response::error(400, "\"scale\" must be \"quick\" or \"full\""))?,
    };
    let positive = |name: &str, default: usize| -> Result<usize, Response> {
        match o.get(name) {
            None | Some(Value::Null) => Ok(default),
            Some(v) => match v.as_i64() {
                Some(n) if n >= 1 => Ok(n as usize),
                _ => Err(Response::error(400, &format!("\"{name}\" must be a positive integer"))),
            },
        }
    };
    let jobs = positive("jobs", default_jobs)?;
    let des_threads = positive("des_threads", 1)?;
    Ok(RunRequest { figure, scale, jobs, des_threads })
}

/// Normalized route pattern for metric labels: path parameters collapse to
/// `:id` so label cardinality stays bounded no matter how many runs exist.
fn route_label(method: &str, path: &str) -> &'static str {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segs.as_slice()) {
        ("GET", []) => "GET /",
        ("GET", ["figures"]) => "GET /figures",
        ("POST", ["runs"]) => "POST /runs",
        ("GET", ["runs"]) => "GET /runs",
        ("GET", ["runs", _]) => "GET /runs/:id",
        ("GET", ["runs", _, "result"]) => "GET /runs/:id/result",
        ("GET", ["registry"]) => "GET /registry",
        ("GET", ["stats"]) => "GET /stats",
        ("GET", ["metrics"]) => "GET /metrics",
        ("GET", ["dashboard"]) => "GET /dashboard",
        _ => "other",
    }
}

/// Dispatch one request against the service state, recording per-route
/// request count (by status class) and latency in the global registry.
pub fn handle(req: &Request, state: &AppState) -> Response {
    let route = route_label(req.method.as_str(), &req.path);
    let sw = xtsim_obs::Stopwatch::start();
    let resp = dispatch(req, state);
    xtsim_obs::histogram_with(
        "xtsim_http_request_seconds",
        "HTTP request handling latency by normalized route.",
        &[("route", route)],
    )
    .observe_since(&sw);
    let class: &str = match resp.status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    };
    xtsim_obs::counter_with(
        "xtsim_http_requests_total",
        "HTTP requests handled, by normalized route and status class.",
        &[("route", route), ("status", class)],
    )
    .inc();
    resp
}

fn dispatch(req: &Request, state: &AppState) -> Response {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", []) => json_response(
            200,
            &obj(vec![
                ("service", "xtsim-serve".into()),
                ("engine_version", ENGINE_VERSION.into()),
                (
                    "endpoints",
                    Value::Array(
                        [
                            "GET /figures",
                            "POST /runs",
                            "GET /runs",
                            "GET /runs/<id>",
                            "GET /runs/<id>/result",
                            "GET /registry",
                            "GET /stats",
                            "GET /metrics",
                            "GET /dashboard",
                        ]
                        .iter()
                        .map(|s| Value::Str((*s).to_string()))
                        .collect(),
                    ),
                ),
            ]),
        ),
        ("GET", ["figures"]) => {
            let figs: Vec<Value> = catalog()
                .iter()
                .map(|f| obj(vec![("id", f.id.into()), ("title", f.title.into())]))
                .collect();
            json_response(200, &Value::Array(figs))
        }
        ("POST", ["runs"]) => {
            let request = match parse_run_request(&req.body, state.default_jobs) {
                Ok(r) => r,
                Err(resp) => return resp,
            };
            match state.scheduler.submit(request) {
                Ok(id) => json_response(
                    202,
                    &obj(vec![
                        ("id", id.into()),
                        ("status", "queued".into()),
                        ("location", format!("/runs/{id}").into()),
                    ]),
                ),
                Err(Rejected::QueueFull) => {
                    Response::error(429, "run queue is full; retry after current runs drain")
                }
            }
        }
        ("GET", ["runs"]) => {
            let runs: Vec<Value> = state.scheduler.runs().iter().map(run_envelope).collect();
            json_response(200, &Value::Array(runs))
        }
        ("GET", ["runs", id]) => match id.parse::<u64>().ok().and_then(|id| state.scheduler.run(id)) {
            Some(rec) => json_response(200, &run_envelope(&rec)),
            None => Response::error(404, &format!("no such run: {id}")),
        },
        ("GET", ["runs", id, "result"]) => {
            match id.parse::<u64>().ok().and_then(|id| state.scheduler.run(id)) {
                Some(rec) => match (&rec.status, &rec.output) {
                    (RunStatus::Done, Some(out)) => {
                        // Raw pretty JSON: byte-identical to the CLI artifact.
                        Response::json(200, out.result_json.clone())
                    }
                    (RunStatus::Failed, _) => Response::error(
                        500,
                        rec.error.as_deref().unwrap_or("run failed"),
                    ),
                    _ => json_response(202, &run_envelope(&rec)),
                },
                None => Response::error(404, &format!("no such run: {id}")),
            }
        }
        ("GET", ["registry"]) => match &state.registry {
            Some(reg) => {
                let replay = reg.replay();
                json_response(
                    200,
                    &obj(vec![
                        ("records", Value::Array(replay.records)),
                        ("skipped", replay.skipped.into()),
                    ]),
                )
            }
            None => Response::error(404, "registry disabled"),
        },
        ("GET", ["stats"]) => {
            let cache = state
                .cache_dir
                .as_ref()
                .and_then(|dir| DiskCache::new(dir).ok())
                .map(|c| c.stats());
            let registry = state.registry.as_ref().map(|reg| {
                let replay = reg.replay();
                obj(vec![
                    ("records", (replay.records.len() as u64).into()),
                    ("skipped", replay.skipped.into()),
                    ("path", reg.path().display().to_string().into()),
                ])
            });
            json_response(
                200,
                &obj(vec![
                    ("schema", "xtsim-serve-stats-v1".into()),
                    ("engine_version", ENGINE_VERSION.into()),
                    ("figures", (catalog().len() as u64).into()),
                    ("uptime_secs", state.started.elapsed().as_secs_f64().into()),
                    (
                        "queue",
                        serde_json::to_value(&state.scheduler.stats()).expect("stats serialize"),
                    ),
                    (
                        "cache",
                        match cache {
                            Some(c) => serde_json::to_value(&c).expect("cache stats serialize"),
                            None => Value::Null,
                        },
                    ),
                    (
                        "registry",
                        registry.unwrap_or(Value::Null),
                    ),
                ]),
            )
        }
        ("GET", ["metrics"]) => Response {
            status: 200,
            content_type: xtsim_obs::prom::CONTENT_TYPE,
            body: xtsim_obs::prom::render_global().into_bytes(),
        },
        ("GET", ["dashboard"]) => {
            let records = state.registry.as_ref().map(|r| r.replay().records).unwrap_or_default();
            let bench = dashboard::collect_bench_files(&state.bench_root);
            let cache = state
                .cache_dir
                .as_ref()
                .and_then(|dir| DiskCache::new(dir).ok())
                .map(|c| c.stats());
            let telemetry = xtsim_obs::snapshot();
            let html = dashboard::render(
                &records,
                &bench,
                cache.as_ref(),
                Some(&state.scheduler.stats()),
                Some(&telemetry),
            );
            Response::html(html)
        }
        (m, _) if m != "GET" && m != "POST" => Response::error(405, "method not allowed"),
        _ => Response::error(404, &format!("no such endpoint: {} {}", req.method, req.path)),
    }
}

/// Accept loop: one thread per connection (requests are small; figure work
/// happens on the scheduler's worker pool, never on connection threads).
pub fn serve(listener: TcpListener, state: Arc<AppState>) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let resp = match read_request(&mut stream) {
                Some(req) => handle(&req, &state),
                None => Response::error(400, "malformed request"),
            };
            write_response(&mut stream, &resp);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RunOutput;
    use std::collections::BTreeMap as Map;

    fn stub_state() -> AppState {
        let exec: Executor = Arc::new(|_id, req: &RunRequest, _wait: f64| {
            Ok(RunOutput {
                result_json: format!("{{\n  \"id\": \"{}\"\n}}", req.figure),
                wall_secs: 0.01,
                computed: 2,
                cached: 1,
                key_mismatches: 0,
                metrics: None,
            })
        });
        AppState {
            scheduler: Scheduler::new(4, 1, exec),
            registry: None,
            cache_dir: None,
            cache_mem_cap: 0,
            bench_root: PathBuf::from("."),
            default_jobs: 2,
            started: Instant::now(),
        }
    }

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), query: String::new(), body: vec![] }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn body_json(resp: &Response) -> Value {
        serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    fn field<'v>(v: &'v Value, name: &str) -> &'v Value {
        v.as_object().unwrap().get(name).unwrap()
    }

    fn wait_done(state: &AppState, id: u64) {
        for _ in 0..2000 {
            let rec = state.scheduler.run(id).unwrap();
            if rec.status == RunStatus::Done || rec.status == RunStatus::Failed {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("run {id} did not finish");
    }

    #[test]
    fn submit_poll_fetch_result_roundtrip() {
        let state = stub_state();
        let resp = handle(&post("/runs", "{\"figure\": \"fig02\"}"), &state);
        assert_eq!(resp.status, 202);
        let id = field(&body_json(&resp), "id").as_i64().unwrap() as u64;
        wait_done(&state, id);

        let resp = handle(&get(&format!("/runs/{id}")), &state);
        assert_eq!(resp.status, 200);
        let env = body_json(&resp);
        assert_eq!(field(&env, "status").as_str(), Some("done"));
        assert_eq!(field(&env, "figure").as_str(), Some("fig02"));
        // Defaults applied: jobs from state, des_threads 1, scale quick.
        assert_eq!(field(&env, "jobs").as_i64(), Some(2));
        assert_eq!(field(&env, "des_threads").as_i64(), Some(1));
        assert_eq!(field(&env, "scale").as_str(), Some("quick"));
        // Queue timing surfaces on the envelope once the run has run.
        assert!(field(&env, "wait_secs").as_f64().unwrap() >= 0.0);
        assert!(field(&env, "exec_secs").as_f64().unwrap() >= 0.0);

        // The result endpoint returns the executor's bytes verbatim.
        let resp = handle(&get(&format!("/runs/{id}/result")), &state);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\n  \"id\": \"fig02\"\n}");
    }

    #[test]
    fn unknown_figure_is_404_with_ids_listed() {
        let state = stub_state();
        let resp = handle(&post("/runs", "{\"figure\": \"figZZ\"}"), &state);
        assert_eq!(resp.status, 404);
        let err = body_json(&resp);
        assert!(field(&err, "error").as_str().unwrap().contains("figZZ"));
        // Ablations are addressable without any --ablations analogue.
        let resp = handle(&post("/runs", "{\"figure\": \"abl-eager\"}"), &state);
        assert_eq!(resp.status, 202);
    }

    #[test]
    fn bad_requests_are_400() {
        let state = stub_state();
        for body in [
            "",                                     // not JSON
            "[1,2]",                                // not an object
            "{}",                                   // missing figure
            "{\"figure\": \"fig02\", \"scale\": \"huge\"}",
            "{\"figure\": \"fig02\", \"jobs\": 0}",
            "{\"figure\": \"fig02\", \"des_threads\": -1}",
        ] {
            let resp = handle(&post("/runs", body), &state);
            assert_eq!(resp.status, 400, "body {body:?} must be rejected");
        }
        assert_eq!(handle(&get("/runs/999"), &state).status, 404);
        assert_eq!(handle(&get("/nope"), &state).status, 404);
        let del = Request {
            method: "DELETE".into(),
            path: "/runs".into(),
            query: String::new(),
            body: vec![],
        };
        assert_eq!(handle(&del, &state).status, 405);
    }

    #[test]
    fn stats_and_figures_shapes() {
        let state = stub_state();
        let resp = handle(&get("/stats"), &state);
        assert_eq!(resp.status, 200);
        let stats = body_json(&resp);
        assert_eq!(field(&stats, "schema").as_str(), Some("xtsim-serve-stats-v1"));
        let queue = field(&stats, "queue").as_object().unwrap().clone();
        for k in ["queued", "running", "done", "failed", "rejected", "capacity", "workers"] {
            assert!(queue.contains_key(k), "queue stats missing {k}");
        }
        assert_eq!(field(&stats, "cache"), &Value::Null);
        assert_eq!(field(&stats, "registry"), &Value::Null);

        let resp = handle(&get("/figures"), &state);
        let figs = body_json(&resp);
        let ids: Map<&str, ()> = figs
            .as_array()
            .unwrap()
            .iter()
            .map(|f| (field(f, "id").as_str().unwrap(), ()))
            .collect();
        assert!(ids.contains_key("fig02") && ids.contains_key("table1"));
        assert!(ids.contains_key("abl-eager"), "ablations belong to the catalog");

        let resp = handle(&get("/dashboard"), &state);
        assert_eq!(resp.status, 200);
        assert!(std::str::from_utf8(&resp.body).unwrap().contains("<h1>"));
    }

    #[test]
    fn metrics_endpoint_exposes_http_and_queue_series() {
        let state = stub_state();
        // Drive one full run so queue histograms have observations, then a
        // known-404 so the 4xx class exists.
        let resp = handle(&post("/runs", "{\"figure\": \"fig02\"}"), &state);
        let id = field(&body_json(&resp), "id").as_i64().unwrap() as u64;
        wait_done(&state, id);
        let _ = handle(&get("/runs/999999"), &state);

        let resp = handle(&get("/metrics"), &state);
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain"));
        let text = std::str::from_utf8(&resp.body).unwrap();
        assert!(text.contains("# TYPE xtsim_http_requests_total counter"));
        assert!(text.contains("# TYPE xtsim_queue_wait_seconds histogram"));
        assert!(text.contains("# TYPE xtsim_queue_service_seconds histogram"));
        assert!(
            text.contains("route=\"POST /runs\""),
            "per-route series missing: {text}"
        );
        assert!(text.contains("route=\"GET /runs/:id\""), "path params must normalize");
        assert!(text.contains("status=\"4xx\""));
        // Histogram invariants hold in the served bytes.
        assert!(text.contains("xtsim_queue_wait_seconds_bucket{le=\"+Inf\"}"));
        assert!(text.contains("xtsim_queue_wait_seconds_count"));
    }
}
