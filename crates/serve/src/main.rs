#![forbid(unsafe_code)]
//! `xtsim-serve` — serve figure sweeps over HTTP, or render the dashboard
//! one-shot.
//!
//! ```text
//! xtsim-serve [--port N] [--queue-cap N] [--max-concurrent N] [--jobs N]
//!             [--cache-dir DIR | --no-cache] [--cache-mem-cap BYTES]
//!             [--registry-dir DIR] [--bench-root DIR] [--dashboard DIR]
//!             [--events FILE]
//! ```
//!
//! Server mode (default) binds `127.0.0.1:<port>` (`--port 0` picks an
//! ephemeral port) and prints one `listening on http://...` line for
//! scripts to parse. `--dashboard DIR` instead renders the static
//! dashboard from the registry and `BENCH_*.json` files into
//! `DIR/index.html` and exits.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use xtsim::sweep::{DiskCache, DEFAULT_MEM_CAP};
use xtsim_serve::queue::Scheduler;
use xtsim_serve::registry::Registry;
use xtsim_serve::dashboard;
use xtsim_serve::server::{figure_executor, serve, AppState};

struct Args {
    port: u16,
    queue_cap: usize,
    max_concurrent: usize,
    jobs: usize,
    cache: bool,
    cache_dir: PathBuf,
    cache_mem_cap: u64,
    registry_dir: PathBuf,
    bench_root: PathBuf,
    dashboard: Option<PathBuf>,
    events: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 8650,
        queue_cap: 16,
        max_concurrent: 2,
        jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        cache: true,
        cache_dir: DiskCache::default_dir(),
        cache_mem_cap: DEFAULT_MEM_CAP,
        registry_dir: Registry::default_dir(),
        bench_root: PathBuf::from("."),
        dashboard: None,
        events: None,
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                args.port = need(&mut it, "--port").parse().unwrap_or_else(|_| {
                    eprintln!("--port needs a number (0 = ephemeral)");
                    std::process::exit(2);
                });
            }
            "--queue-cap" => {
                args.queue_cap = parse_positive(&need(&mut it, "--queue-cap"), "--queue-cap");
            }
            "--max-concurrent" => {
                args.max_concurrent =
                    parse_positive(&need(&mut it, "--max-concurrent"), "--max-concurrent");
            }
            "--jobs" => args.jobs = parse_positive(&need(&mut it, "--jobs"), "--jobs"),
            "--no-cache" => args.cache = false,
            "--cache-dir" => args.cache_dir = PathBuf::from(need(&mut it, "--cache-dir")),
            "--cache-mem-cap" => {
                let v = need(&mut it, "--cache-mem-cap");
                args.cache_mem_cap = xtsim::cli::parse_byte_size("--cache-mem-cap", &v)
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
            }
            "--registry-dir" => args.registry_dir = PathBuf::from(need(&mut it, "--registry-dir")),
            "--bench-root" => args.bench_root = PathBuf::from(need(&mut it, "--bench-root")),
            "--dashboard" => args.dashboard = Some(PathBuf::from(need(&mut it, "--dashboard"))),
            "--events" => args.events = Some(PathBuf::from(need(&mut it, "--events"))),
            "--help" | "-h" => {
                println!(
                    "usage: xtsim-serve [--port N] [--queue-cap N] [--max-concurrent N] [--jobs N]\n\
                     \x20                  [--cache-dir DIR | --no-cache] [--cache-mem-cap BYTES]\n\
                     \x20                  [--registry-dir DIR] [--bench-root DIR] [--dashboard DIR]\n\
                     \x20                  [--events FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

// Shared xtsim::cli validation (same messages as the figures CLI): a bad
// token exits 2 naming the flag and quoting the token.
fn parse_positive(v: &str, flag: &str) -> usize {
    xtsim::cli::parse_positive(flag, v).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.events {
        // Structured JSONL event log: all levels go to the file, WARN+
        // still mirrors to stderr either way.
        if let Err(e) = xtsim_obs::events::set_json_path(path) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let registry = match Registry::open(&args.registry_dir) {
        Ok(reg) => Some(Arc::new(reg)),
        Err(e) => {
            xtsim_obs::events::warn(
                "xtsim_serve::main",
                &format!(
                    "cannot open registry at {}: {e}; running without one",
                    args.registry_dir.display()
                ),
                &[("registry_dir", &args.registry_dir.display().to_string())],
            );
            None
        }
    };

    if let Some(dir) = &args.dashboard {
        // One-shot: render from durable state only (no live queue).
        let records = registry.as_ref().map(|r| r.replay().records).unwrap_or_default();
        let bench = dashboard::collect_bench_files(&args.bench_root);
        let cache = args
            .cache
            .then(|| DiskCache::new(&args.cache_dir).ok())
            .flatten()
            .map(|c| c.stats());
        let html = dashboard::render(&records, &bench, cache.as_ref(), None, None);
        match dashboard::write_to(dir, &html) {
            Ok(path) => println!("dashboard written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write dashboard to {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
        return;
    }

    let cache_dir = args.cache.then(|| args.cache_dir.clone());
    let exec = figure_executor(cache_dir.clone(), args.cache_mem_cap, registry.clone());
    let state = Arc::new(AppState {
        scheduler: Scheduler::new(args.queue_cap, args.max_concurrent, exec),
        registry,
        cache_dir,
        cache_mem_cap: args.cache_mem_cap,
        bench_root: args.bench_root.clone(),
        default_jobs: args.jobs,
        started: Instant::now(),
    });

    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind 127.0.0.1:{}: {e}", args.port);
            std::process::exit(1);
        }
    };
    let addr = listener.local_addr().expect("bound listener has an address");
    // One parseable line for scripts (the CI smoke greps the port).
    println!("xtsim-serve listening on http://{addr}");
    println!(
        "  queue capacity {}, max {} concurrent run(s), {} sweep worker(s) per run, cache {}",
        args.queue_cap,
        args.max_concurrent,
        args.jobs,
        match (args.cache, args.cache_mem_cap) {
            (false, _) => "off".to_string(),
            (true, 0) => "on (disk only)".to_string(),
            (true, cap) => format!("on ({} KiB memory tier)", cap / 1024),
        }
    );
    serve(listener, state);
}
