//! Append-only run registry: one JSONL line per completed figure run.
//!
//! The registry is the service's durable memory — restart it and the
//! dashboard's history is still there. Records are self-describing
//! (`schema: "xtsim-registry-v1"`) and carry everything needed to
//! reproduce or audit the run: engine version, canonical request params,
//! outcome, wall-clock, and the per-figure [`FigureMetrics`] when
//! collected. Appends are a single `write` of one line, so concurrent
//! writers (or a crash mid-append) can at worst tear the final line —
//! which [`Registry::replay`] tolerates by skipping it, counted.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::Value;
use xtsim::sweep::FigureMetrics;

use crate::queue::RunRecord;

/// Schema tag stamped into every record.
pub const REGISTRY_SCHEMA: &str = "xtsim-registry-v1";

/// Replay outcome: the parsed records plus how many lines were skipped as
/// corrupt (torn final line from a crashed writer, manual edits, ...).
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Records in append order.
    pub records: Vec<Value>,
    /// Unparsable lines skipped.
    pub skipped: u64,
}

/// Append-only JSONL registry rooted at a directory (`<dir>/runs.jsonl`).
pub struct Registry {
    path: PathBuf,
}

impl Registry {
    /// Open (creating if needed) the registry under `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Registry> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Registry { path: dir.join("runs.jsonl") })
    }

    /// The conventional registry location used by `xtsim-serve`.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/registry")
    }

    /// Path of the JSONL file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record as a single JSONL line.
    pub fn append(&self, record: &Value) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::other(format!("record serializes: {e:?}")))?;
        line.push('\n');
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        // One write call for line + newline keeps concurrent appends whole.
        f.write_all(line.as_bytes())
    }

    /// Read every record back, skipping (and counting) corrupt lines. A
    /// missing file is an empty registry, not an error.
    pub fn replay(&self) -> Replay {
        let mut out = Replay::default();
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return out;
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Value>(line) {
                Ok(v) => out.records.push(v),
                Err(_) => out.skipped += 1,
            }
        }
        out
    }
}

/// Build the registry record for a finished run. `finished_unix` is seconds
/// since the Unix epoch, captured by the caller (the service's clock is the
/// only wall clock in the stack; simulated results never depend on it).
pub fn make_record(rec: &RunRecord, finished_unix: f64) -> Value {
    let mut m = std::collections::BTreeMap::new();
    m.insert("schema".into(), REGISTRY_SCHEMA.into());
    m.insert("run_id".into(), rec.id.into());
    m.insert("engine_version".into(), xtsim::sweep::ENGINE_VERSION.into());
    m.insert("figure".into(), rec.request.figure.as_str().into());
    m.insert("scale".into(), rec.request.scale.label().into());
    // Canonical params: everything that shaped the run, in one object.
    let mut params = std::collections::BTreeMap::new();
    params.insert("figure".into(), rec.request.figure.as_str().into());
    params.insert("scale".into(), rec.request.scale.label().into());
    params.insert("jobs".into(), rec.request.jobs.into());
    params.insert("des_threads".into(), rec.request.des_threads.into());
    m.insert("params".into(), Value::Object(params));
    m.insert("outcome".into(), rec.status.label().into());
    // Queue timing (absent on records from before these fields existed;
    // replay consumers must treat them as optional).
    if let Some(w) = rec.wait_secs {
        m.insert("wait_secs".into(), w.into());
    }
    if let Some(e) = rec.exec_secs {
        m.insert("exec_secs".into(), e.into());
    }
    if let Some(e) = &rec.error {
        m.insert("error".into(), e.as_str().into());
    }
    if let Some(out) = &rec.output {
        m.insert("wall_secs".into(), out.wall_secs.into());
        m.insert("computed".into(), out.computed.into());
        m.insert("cached".into(), out.cached.into());
        m.insert("key_mismatches".into(), out.key_mismatches.into());
        m.insert(
            "metrics".into(),
            match &out.metrics {
                Some(fm) => serde_json::to_value::<FigureMetrics>(fm)
                    .expect("FigureMetrics serializes"),
                None => Value::Null,
            },
        );
    }
    m.insert("finished_unix".into(), finished_unix.into());
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{RunOutput, RunRequest, RunStatus};
    use xtsim::report::Scale;

    fn record(id: u64, figure: &str, wall: f64) -> Value {
        make_record(
            &RunRecord {
                id,
                request: RunRequest {
                    figure: figure.into(),
                    scale: Scale::Quick,
                    jobs: 2,
                    des_threads: 1,
                },
                status: RunStatus::Done,
                output: Some(RunOutput {
                    result_json: "{}".into(),
                    wall_secs: wall,
                    computed: 3,
                    cached: 1,
                    key_mismatches: 0,
                    metrics: None,
                }),
                error: None,
                wait_secs: Some(0.25),
                exec_secs: Some(wall),
            },
            1754000000.0 + id as f64,
        )
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = std::env::temp_dir().join(format!("xtsim-registry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::open(&dir).unwrap();
        assert!(reg.replay().records.is_empty(), "fresh registry must be empty");
        let recs: Vec<Value> = (1..=3).map(|i| record(i, "fig02", 0.5 * i as f64)).collect();
        for r in &recs {
            reg.append(r).unwrap();
        }
        // A reopened registry replays byte-equal records in append order.
        let replay = Registry::open(&dir).unwrap().replay();
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.records, recs);
        let first = replay.records[0].as_object().unwrap();
        assert_eq!(first.get("schema").unwrap().as_str(), Some(REGISTRY_SCHEMA));
        assert_eq!(first.get("outcome").unwrap().as_str(), Some("done"));
        assert_eq!(
            first.get("params").unwrap().as_object().unwrap().get("jobs"),
            Some(&Value::Int(2))
        );
        assert_eq!(first.get("wait_secs").unwrap().as_f64(), Some(0.25));
        assert_eq!(first.get("exec_secs").unwrap().as_f64(), Some(0.5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_tolerates_records_without_queue_timing() {
        // Records appended by versions that predate wait_secs/exec_secs
        // simply lack the keys; replay must hand them back unchanged.
        let dir =
            std::env::temp_dir().join(format!("xtsim-registry-old-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::open(&dir).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(reg.path())
            .unwrap();
        f.write_all(
            b"{\"schema\":\"xtsim-registry-v1\",\"run_id\":7,\"figure\":\"fig02\",\
              \"outcome\":\"done\",\"wall_secs\":1.5,\"finished_unix\":1754000000.0}\n",
        )
        .unwrap();
        drop(f);
        let replay = reg.replay();
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.records.len(), 1);
        let rec = replay.records[0].as_object().unwrap();
        assert!(rec.get("wait_secs").is_none());
        assert!(rec.get("exec_secs").is_none());
        assert_eq!(rec.get("run_id").unwrap().as_i64(), Some(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_skips_torn_final_line() {
        let dir = std::env::temp_dir().join(format!("xtsim-registry-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::open(&dir).unwrap();
        reg.append(&record(1, "fig02", 1.0)).unwrap();
        // Simulate a writer that died mid-append.
        let mut f = std::fs::OpenOptions::new().append(true).open(reg.path()).unwrap();
        f.write_all(b"{\"schema\":\"xtsim-regist").unwrap();
        drop(f);
        let replay = reg.replay();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
