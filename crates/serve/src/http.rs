//! Minimal HTTP/1.1 request/response handling over `std::net`, in the
//! spirit of the offline compat shims: just enough of the protocol for a
//! localhost JSON API — no chunked encoding, no keep-alive, no TLS.
//!
//! Every connection carries exactly one request; responses always close the
//! connection (`Connection: close`), which keeps the server loop trivial
//! and is fine for a CI/dashboard workload.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted header block, and largest accepted body. Requests are
/// tiny JSON scenario descriptions; anything bigger is hostile or broken.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path (query string split off), body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method, e.g. `GET`, `POST`.
    pub method: String,
    /// Decoded path component, e.g. `/runs/3`.
    pub path: String,
    /// Raw query string after `?`, empty when absent.
    pub query: String,
    /// Request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

/// A response ready to serialize: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response { status, content_type: "application/json", body: body.into() }
    }

    /// An HTML response (status 200).
    pub fn html(body: impl Into<Vec<u8>>) -> Response {
        Response { status: 200, content_type: "text/html; charset=utf-8", body: body.into() }
    }

    /// A JSON error envelope `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Response {
        let body = serde_json::to_string(&serde::Value::Object(
            [("error".to_string(), serde::Value::Str(msg.to_string()))]
                .into_iter()
                .collect(),
        ))
        .expect("error envelope serializes");
        Response::json(status, body)
    }
}

/// Reason phrase for the status codes this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Read and parse one request off `stream`. Returns `None` on malformed or
/// oversized input (the caller answers 400 and closes).
pub fn read_request(stream: &mut TcpStream) -> Option<Request> {
    // A stalled client must not wedge a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).ok()?;
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return None;
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Some(Request { method, path, query, body })
}

/// Serialize `resp` onto `stream` (best effort — a vanished client is not an
/// error worth surfacing).
pub fn write_response(stream: &mut TcpStream, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&resp.body))
        .and_then(|()| stream.flush());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Option<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let tx = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        tx.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = roundtrip(
            b"POST /runs?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/runs");
        assert_eq!(req.query, "verbose=1");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_non_http_and_short_body() {
        assert!(roundtrip(b"GARBAGE\r\n\r\n").is_none());
        assert!(roundtrip(b"GET / FTP/9\r\n\r\n").is_none());
        // Declared body longer than what arrives: read_exact fails.
        assert!(roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort").is_none());
    }
}
