//! Cross-app invariant tests at reduced scale.

use xtsim_apps::{aorsa, cam, namd, pop, s3d};
use xtsim_machine::{presets, ExecMode};

#[test]
fn cam_throughput_monotone_in_tasks() {
    let m = presets::xt4();
    let mut last = 0.0;
    for t in [32usize, 64, 120, 240] {
        let r = cam::cam(&m, ExecMode::VN, t, 1).unwrap();
        assert!(r.years_per_day > last, "t={t}: {r:?}");
        last = r.years_per_day;
    }
}

#[test]
fn cam_phase_times_sum_to_throughput() {
    let m = presets::xt4();
    let r = cam::cam(&m, ExecMode::SN, 64, 1).unwrap();
    // years/day and phase costs are two views of the same wall time.
    let secs_per_day = r.dynamics_secs_per_day + r.physics_secs_per_day;
    let implied_ypd = 86_400.0 / secs_per_day / 365.25;
    assert!(
        (implied_ypd - r.years_per_day).abs() < 0.02 * r.years_per_day,
        "{implied_ypd} vs {}",
        r.years_per_day
    );
}

#[test]
fn pop_phase_times_sum_to_throughput() {
    let m = presets::xt4();
    let r = pop::pop(&m, ExecMode::SN, 512, pop::Solver::StandardCg).unwrap();
    let secs_per_day = r.baroclinic_secs_per_day + r.barotropic_secs_per_day;
    let implied_ypd = 86_400.0 / secs_per_day / 365.25;
    assert!(
        (implied_ypd - r.years_per_day).abs() < 0.02 * r.years_per_day,
        "{implied_ypd} vs {}",
        r.years_per_day
    );
}

#[test]
fn namd_3m_costs_about_3x_1m_at_fixed_tasks() {
    let m = presets::xt4();
    let t = 256;
    let one = namd::namd(&m, ExecMode::VN, t, namd::System::Atoms1M);
    let three = namd::namd(&m, ExecMode::VN, t, namd::System::Atoms3M);
    let ratio = three.secs_per_step / one.secs_per_step;
    assert!(ratio > 2.0 && ratio < 3.5, "{ratio}");
}

#[test]
fn s3d_cost_metric_matches_step_time() {
    let m = presets::xt4();
    let r = s3d::s3d(&m, ExecMode::VN, 27);
    let implied = r.secs_per_step / 125_000.0 * 1e6;
    assert!((implied - r.cost_us_per_point).abs() < 1e-9);
}

#[test]
fn aorsa_grind_decomposes() {
    let r = aorsa::aorsa(&presets::xt4(), ExecMode::VN, 2048, 300);
    assert!((r.axb_minutes + r.ql_minutes - r.total_minutes).abs() < 1e-9);
    assert!(r.axb_minutes > r.ql_minutes, "solve dominates: {r:?}");
}

#[test]
fn aorsa_more_cores_never_slower() {
    let mut last = f64::INFINITY;
    for cores in [1024usize, 2048, 4096] {
        let r = aorsa::aorsa(&presets::xt4(), ExecMode::VN, cores, 300);
        assert!(r.total_minutes < last, "{cores}: {r:?}");
        last = r.total_minutes;
    }
}

#[test]
fn pop_infeasible_configurations_return_none() {
    // More tasks than grid columns is unrunnable.
    assert!(pop::pop(&presets::xt4(), ExecMode::VN, 0, pop::Solver::StandardCg).is_none());
    assert!(cam::cam(&presets::xt4(), ExecMode::VN, 961, 1).is_none());
    assert!(cam::decompose(0).is_none());
}

#[test]
fn cam_vn_gap_is_mpi_driven_at_scale() {
    // Paper §6.1: the SN advantage at large task counts is "primarily due
    // to degraded MPI performance when running in VN mode" — the profiler
    // must show a larger MPI share in VN mode.
    let m = presets::xt4();
    let sn = cam::cam(&m, ExecMode::SN, 480, 1).unwrap();
    let vn = cam::cam(&m, ExecMode::VN, 480, 1).unwrap();
    assert!(
        vn.mpi_fraction > sn.mpi_fraction,
        "VN {} vs SN {}",
        vn.mpi_fraction,
        sn.mpi_fraction
    );
    assert!(vn.mpi_fraction < 0.6, "sanity: {}", vn.mpi_fraction);
}
