//! NAMD proxy — biomolecular MD (§6.3, Figures 20–21).
//!
//! Per-step structure of a spatially-decomposed MD code with PME
//! electrostatics:
//!
//! * short-range forces: cell-list pair interactions over the rank's patch
//!   (compute scales 1/p) — the real kernel lives in
//!   [`xtsim_kernels::md`];
//! * neighbour exchange: positions/forces with the 6 face neighbours of the
//!   patch grid (surface ∝ (atoms/p)^⅔);
//! * PME long-range part: a 3-D FFT on a charge grid whose parallelism is
//!   capped by its plane count — this is what limits the 1M-atom system's
//!   scaling beyond 8,192 cores (paper: "the scaling for 1M atom system is
//!   restricted by the size of the underlying FFT grid computations").

use xtsim_machine::{ExecMode, MachineSpec, WorkPacket};
use xtsim_mpi::{simulate, Message};

use crate::common::{app_job, grid_3d, BalancedWork, PhaseMarks};

/// Calibrated force-field work, flops per atom per step (short-range +
/// bonded + integration, multiple-timestepping averaged).
pub const FLOPS_PER_ATOM: f64 = 17_000.0;
/// Effective DRAM bytes per flop (MD is cache-friendly: the paper sees only
/// ~5% XT3→XT4 gain and ≤10% SN→VN impact).
pub const MEM_INTENSITY: f64 = 1.25;
/// Contended fraction of that traffic in VN mode.
pub const CONTENDED_FRACTION: f64 = 0.2;
/// Bytes exchanged per surface atom with each face neighbour.
pub const BYTES_PER_SURFACE_ATOM: f64 = 72.0;

/// Benchmark systems from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// ~1-million-atom system (PME grid 128³).
    Atoms1M,
    /// ~3-million-atom system (PME grid 192³).
    Atoms3M,
}

impl System {
    /// Atom count.
    pub fn atoms(self) -> f64 {
        match self {
            System::Atoms1M => 1.0e6,
            System::Atoms3M => 3.0e6,
        }
    }

    /// PME charge-grid edge length.
    pub fn pme_grid(self) -> usize {
        match self {
            System::Atoms1M => 128,
            System::Atoms3M => 192,
        }
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            System::Atoms1M => "1M",
            System::Atoms3M => "3M",
        }
    }
}

/// Result: seconds of wall time per MD step.
#[derive(Debug, Clone, Copy)]
pub struct NamdResult {
    /// Wall seconds per simulation timestep.
    pub secs_per_step: f64,
    /// Fraction of the step spent in the PME (FFT) part.
    pub pme_fraction: f64,
}

/// Run `system` on `tasks` MPI tasks.
pub fn namd(machine: &MachineSpec, mode: ExecMode, tasks: usize, system: System) -> NamdResult {
    let atoms_per = system.atoms() / tasks as f64;
    // MD kernels are cache-friendly: higher flop-phase efficiency, low
    // memory intensity.
    let force = BalancedWork::new(
        machine,
        FLOPS_PER_ATOM * atoms_per,
        MEM_INTENSITY,
        CONTENDED_FRACTION,
        2.0,
    );
    // Patch surface: (atoms/p)^(2/3) atoms per face.
    let surface_atoms = atoms_per.powf(2.0 / 3.0);
    let halo_bytes = (BYTES_PER_SURFACE_ATOM * surface_atoms) as u64;
    // PME: parallelism capped at one grid plane per rank.
    let grid = system.pme_grid();
    let pme_ranks = tasks.min(grid);
    let grid_pts = (grid * grid * grid) as f64;
    let pme_flops = 2.0 * 5.0 * grid_pts * (grid_pts.log2()); // fwd+inv FFT
    let pme_compute = WorkPacket {
        flops: pme_flops / pme_ranks as f64,
        flop_efficiency: 0.35,
        serial_dram_bytes: 16.0 * grid_pts / pme_ranks as f64,
        shared_dram_bytes: 0.0,
        random_refs: 0.0,
    };
    // Two transposes of the charge grid across the PME group.
    let pme_pair_bytes = (16.0 * grid_pts / (pme_ranks as f64 * pme_ranks as f64)) as u64;

    let marks = PhaseMarks::new();
    let marks2 = marks.clone();
    let cfg = app_job(machine, mode, tasks);
    let (gx, gy, gz) = grid_3d(tasks);
    simulate(33, cfg, move |mpi| {
        let marks = marks2.clone();
        async move {
            let me = mpi.rank();
            let (x, y, z) = (me % gx, (me / gx) % gy, me / (gx * gy));
            let wrap = |v: usize, d: usize, up: bool| -> usize {
                if up {
                    (v + 1) % d
                } else {
                    (v + d - 1) % d
                }
            };
            let nb = |x: usize, y: usize, z: usize| x + y * gx + z * gx * gy;
            let neighbours = [
                nb(wrap(x, gx, true), y, z),
                nb(wrap(x, gx, false), y, z),
                nb(x, wrap(y, gy, true), z),
                nb(x, wrap(y, gy, false), z),
                nb(x, y, wrap(z, gz, true)),
                nb(x, y, wrap(z, gz, false)),
            ];
            // --- position exchange + short-range forces ---
            let mut sends = Vec::new();
            for (k, &n) in neighbours.iter().enumerate() {
                if n != me {
                    sends.push(mpi.isend(n, 400 + k as u64, Message::of_bytes(halo_bytes)));
                }
            }
            let opposite = [1usize, 0, 3, 2, 5, 4];
            for (k, &n) in neighbours.iter().enumerate() {
                if n != me {
                    mpi.recv(Some(n), Some(400 + opposite[k] as u64)).await;
                }
            }
            for s in sends {
                s.await;
            }
            force.run(&mpi).await;
            marks.mark(0, mpi.now().as_secs_f64());
            // --- PME long-range part on the PME sub-communicator ---
            let pme_group: Vec<usize> = (0..pme_ranks).collect();
            let pme_comm = mpi.comm().sub(&pme_group);
            if let Some(pme) = pme_comm {
                for _ in 0..2 {
                    let msgs = (0..pme.size())
                        .map(|_| Message::of_bytes(pme_pair_bytes))
                        .collect();
                    pme.alltoall(msgs).await;
                }
                mpi.compute(pme_compute).await;
            }
            // Everyone waits for the PME result (broadcast of grid forces).
            mpi.comm().barrier().await;
            marks.mark(1, mpi.now().as_secs_f64());
        }
    });
    let force_t = marks.phase(0);
    let pme_t = marks.phase(1);
    let total = force_t + pme_t;
    NamdResult {
        secs_per_step: total,
        pme_fraction: pme_t / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn one_m_atoms_hits_headline_at_8k() {
        // Paper: ~9 ms/step for 1M atoms at 8,192 VN cores.
        let r = namd(&presets::xt4(), ExecMode::VN, 8192, System::Atoms1M);
        assert!(
            r.secs_per_step > 4e-3 && r.secs_per_step < 18e-3,
            "{r:?}"
        );
    }

    #[test]
    fn three_m_atoms_at_12k() {
        // Paper: ~12 ms/step for 3M atoms at 12,000 XT4 cores.
        let r = namd(&presets::xt4(), ExecMode::VN, 12_000, System::Atoms3M);
        assert!(
            r.secs_per_step > 6e-3 && r.secs_per_step < 25e-3,
            "{r:?}"
        );
    }

    #[test]
    fn one_m_scaling_flattens_beyond_fft_limit() {
        // The 1M system stops scaling once the PME grid is exhausted.
        let m = presets::xt4();
        let r2k = namd(&m, ExecMode::VN, 2048, System::Atoms1M);
        let r8k = namd(&m, ExecMode::VN, 8192, System::Atoms1M);
        let speedup = r2k.secs_per_step / r8k.secs_per_step;
        assert!(speedup < 3.0, "unexpectedly ideal: {speedup}");
        assert!(r8k.pme_fraction > r2k.pme_fraction);
    }

    #[test]
    fn xt4_about_5_percent_faster_than_xt3() {
        // Paper: "order of 5% performance gain over the XT3 system".
        let xt3 = namd(&presets::xt3_dual(), ExecMode::VN, 1024, System::Atoms1M);
        let xt4 = namd(&presets::xt4(), ExecMode::VN, 1024, System::Atoms1M);
        let gain = xt3.secs_per_step / xt4.secs_per_step;
        assert!(gain > 1.0 && gain < 1.35, "gain {gain}");
    }

    #[test]
    fn sn_vn_gap_small_at_moderate_scale() {
        // Paper Figure 21: order of 10% or less from using the second core.
        let m = presets::xt4();
        let sn = namd(&m, ExecMode::SN, 512, System::Atoms1M);
        let vn = namd(&m, ExecMode::VN, 512, System::Atoms1M);
        let gap = vn.secs_per_step / sn.secs_per_step;
        assert!(gap > 0.98 && gap < 1.35, "gap {gap}");
    }
}
