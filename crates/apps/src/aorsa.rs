//! AORSA proxy — all-orders spectral full-wave fusion solver (§6.5,
//! Figure 23).
//!
//! AORSA's hot path is the factorization of a dense *complex* linear system
//! (ScaLAPACK originally; later an HPL variant modified for complex
//! coefficients with Goto BLAS), followed by evaluation of the
//! quasi-linear (QL) operator. The proxy simulates the blocked solve as
//! panel-broadcast rounds carrying the full communication volume over the
//! torus plus the exact complex-LU flop count, and the QL operator as an
//! embarrassingly parallel pass over the solution — strong-scaled from 4k
//! to 22.5k cores exactly as in Figure 23.

use xtsim_machine::{ExecMode, MachineSpec, WorkPacket};
use xtsim_mpi::{simulate, Message};

use crate::common::{app_job, PhaseMarks};
use xtsim_kernels::zlu::zlu_flops;

/// Matrix order for a mode-conversion spatial mesh (3 field components per
/// point). The paper does not state the Figure 23 base mesh explicitly; a
/// 300×300 mesh reproduces its grind-time scale at the published 16.7
/// TFLOPS solver rate, so the harness uses 300 (the 500×500 mesh of the
/// text is also supported).
pub fn matrix_order(grid: usize) -> usize {
    grid * grid * 3
}

/// Panel rounds sampled by the simulated solve (communication volume is
/// preserved; see DESIGN.md on round sampling).
const ROUNDS: usize = 24;

/// Grind-time breakdown in minutes (the units of Figure 23).
#[derive(Debug, Clone, Copy)]
pub struct AorsaResult {
    /// Dense complex solve, minutes.
    pub axb_minutes: f64,
    /// QL operator evaluation, minutes.
    pub ql_minutes: f64,
    /// End-to-end grind time, minutes.
    pub total_minutes: f64,
    /// Solver TFLOPS achieved.
    pub solver_tflops: f64,
}

/// Run the AORSA proxy: `grid`×`grid` spatial mesh on `cores` cores.
pub fn aorsa(machine: &MachineSpec, mode: ExecMode, cores: usize, grid: usize) -> AorsaResult {
    let n = matrix_order(grid);
    let flops = zlu_flops(n);
    let p = cores;
    let solve_round = WorkPacket {
        // The HPL-for-complex solver with Goto BLAS sustains close to DGEMM
        // efficiency (paper: 78.4% of peak at 4,096 cores); the panel
        // streaming term (0.33 B/flop) produces the XT3→XT4 gap of the
        // figure (the paper's 10.56 → 11.8 TFLOPS ScaLAPACK progression).
        flops: flops / p as f64 / ROUNDS as f64,
        flop_efficiency: machine.processor.dgemm_efficiency * 0.95,
        serial_dram_bytes: 0.33 * flops / p as f64 / ROUNDS as f64,
        shared_dram_bytes: 16.0 * (n as f64 / ROUNDS as f64) * (n as f64 / p as f64),
        random_refs: 0.0,
    };
    // Panel broadcast per round: N/ROUNDS columns × N rows × 16 bytes,
    // spread over the process columns (~√p wide grid ⇒ each bcast carries
    // the panel to the rest of its row/column group).
    let panel_bytes = ((n as f64 / ROUNDS as f64) * n as f64 * 16.0 / (p as f64).sqrt()) as u64;
    // QL operator: embarrassingly parallel evaluation over the fields,
    // O(N^1.5) total work (calibrated so the QL bar is the visible fraction
    // of the total that Figure 23 shows).
    let ql = WorkPacket {
        flops: 28_500_000.0 * n as f64 * (n as f64).sqrt() / p as f64,
        flop_efficiency: machine.app.sustained_fraction * 2.0,
        serial_dram_bytes: 0.0,
        shared_dram_bytes: 64.0 * n as f64 / p as f64,
        random_refs: 0.0,
    };

    let marks = PhaseMarks::new();
    let marks2 = marks.clone();
    let cfg = app_job(machine, mode, p);
    simulate(35, cfg, move |mpi| {
        let marks = marks2.clone();
        async move {
            // --- Ax = b ---
            for r in 0..ROUNDS {
                let root = (r * 97) % mpi.size();
                let payload =
                    (mpi.comm().rank() == root).then(|| Message::of_bytes(panel_bytes));
                mpi.comm().bcast(root, payload).await;
                mpi.compute(solve_round).await;
            }
            marks.mark(0, mpi.now().as_secs_f64());
            // --- QL operator ---
            mpi.compute(ql).await;
            mpi.comm().barrier().await;
            marks.mark(1, mpi.now().as_secs_f64());
        }
    });
    let axb = marks.phase(0);
    let ql_t = marks.phase(1);
    AorsaResult {
        axb_minutes: axb / 60.0,
        ql_minutes: ql_t / 60.0,
        total_minutes: (axb + ql_t) / 60.0,
        solver_tflops: flops / axb / 1e12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn solver_efficiency_near_paper_at_4k() {
        // Paper: 16.7 TFLOPS on 4,096 XT4 cores = 78.4% of peak.
        let r = aorsa(&presets::xt4(), ExecMode::VN, 4096, 300);
        let peak_tf = 4096.0 * presets::xt4().processor.core_peak_flops() / 1e12;
        let eff = r.solver_tflops / peak_tf;
        assert!(eff > 0.55 && eff < 0.90, "efficiency {eff} ({r:?})");
    }

    #[test]
    fn strong_scaling_ordering_of_figure_23() {
        // 4k XT3 > 4k XT4 > 8k XT4 > 16k > 22.5k in total grind time.
        let xt3_4k = aorsa(&presets::xt3_dual(), ExecMode::VN, 4096, 300);
        let xt4_4k = aorsa(&presets::xt4(), ExecMode::VN, 4096, 300);
        let xt4_8k = aorsa(&presets::xt4(), ExecMode::VN, 8192, 300);
        let comb_16k = aorsa(&presets::xt3_xt4_combined(), ExecMode::VN, 16_384, 300);
        let comb_22k = aorsa(&presets::xt3_xt4_combined(), ExecMode::VN, 22_500, 300);
        assert!(xt3_4k.total_minutes > xt4_4k.total_minutes);
        assert!(xt4_4k.total_minutes > xt4_8k.total_minutes);
        assert!(xt4_8k.total_minutes > comb_16k.total_minutes);
        assert!(comb_16k.total_minutes > comb_22k.total_minutes);
    }

    #[test]
    fn grind_times_in_figure_23_band() {
        // Figure 23 y-axis runs 0–100 minutes; 4k runs sit high, 22.5k low.
        let xt4_4k = aorsa(&presets::xt4(), ExecMode::VN, 4096, 300);
        assert!(
            xt4_4k.total_minutes > 30.0 && xt4_4k.total_minutes < 110.0,
            "{xt4_4k:?}"
        );
        let comb = aorsa(&presets::xt3_xt4_combined(), ExecMode::VN, 22_500, 300);
        assert!(comb.total_minutes < 40.0, "{comb:?}");
    }

    #[test]
    fn efficiency_drops_at_scale() {
        // Paper: 78.4% of peak at 4k but 65% at 22.5k for the same problem.
        let small = aorsa(&presets::xt4(), ExecMode::VN, 4096, 300);
        let peak_small = 4096.0 * presets::xt4().processor.core_peak_flops() / 1e12;
        let big = aorsa(&presets::xt3_xt4_combined(), ExecMode::VN, 22_500, 300);
        let peak_big = 22_500.0 * presets::xt3_xt4_combined().processor.core_peak_flops() / 1e12;
        assert!(small.solver_tflops / peak_small > big.solver_tflops / peak_big);
    }

    #[test]
    fn larger_grid_cannot_run_small_but_scales_better() {
        // The 500×500 grid (N=750k) improves large-core efficiency (paper:
        // 74.8% of peak at 22.5k cores).
        let big_grid = aorsa(&presets::xt3_xt4_combined(), ExecMode::VN, 22_500, 500);
        let small_grid = aorsa(&presets::xt3_xt4_combined(), ExecMode::VN, 22_500, 300);
        let peak = 22_500.0 * presets::xt3_xt4_combined().processor.core_peak_flops() / 1e12;
        assert!(big_grid.solver_tflops / peak > small_grid.solver_tflops / peak);
    }
}
