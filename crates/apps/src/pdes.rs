//! Scenarios for the parallel (sharded) execution mode.
//!
//! Two small SPMD programs exercised by the PDES differential tests, the
//! `fig24` figure, and the `pdes_alltoall` benchmark. Both run on
//! [`xtsim_mpi::simulate_sharded`], so their results are — by contract —
//! pure functions of `(machine, mode, ranks, payload)`: the shard count,
//! partition map, thread count and epoch window must never change a
//! number. The differential harness in `tests/pdes_equivalence.rs` holds
//! this file to that contract.

use xtsim_des::pdes::LogEntry;
use xtsim_des::{SimDuration, SimTime};
use xtsim_machine::{ExecMode, MachineSpec};
use xtsim_mpi::{simulate_sharded, ShardedConfig};

/// How to shard and drive a PDES scenario (the world shape plus every
/// knob that must NOT affect results).
#[derive(Debug, Clone)]
pub struct PdesScenario {
    /// Machine description.
    pub spec: MachineSpec,
    /// Execution mode.
    pub mode: ExecMode,
    /// Ranks in the job.
    pub ranks: usize,
    /// Shards (1 = serial reference).
    pub shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Optional node→shard map override (stress testing).
    pub partition: Option<Vec<usize>>,
    /// Optional epoch-window cap (stress testing).
    pub window: Option<SimDuration>,
    /// Record per-rank event logs for differential diffs.
    pub log_events: bool,
}

impl PdesScenario {
    /// A serial (1 shard, 1 thread) scenario over `ranks` ranks.
    pub fn new(spec: MachineSpec, mode: ExecMode, ranks: usize) -> PdesScenario {
        PdesScenario {
            spec,
            mode,
            ranks,
            shards: 1,
            threads: 1,
            partition: None,
            window: None,
            log_events: false,
        }
    }

    /// Same scenario with `shards` shards on `threads` threads.
    pub fn sharded(mut self, shards: usize, threads: usize) -> PdesScenario {
        self.shards = shards;
        self.threads = threads;
        self
    }

    fn to_config(&self) -> ShardedConfig {
        let mut c = ShardedConfig::new(self.spec.clone(), self.mode, self.ranks);
        c.shards = self.shards;
        c.threads = self.threads;
        c.partition = self.partition.clone();
        c.window = self.window;
        c.log_events = self.log_events;
        c
    }
}

/// Everything a PDES scenario run yields; every field must be identical
/// for every sharding of the same scenario.
#[derive(Debug)]
pub struct PdesRun {
    /// Simulated wall time of the whole job, seconds.
    pub time_s: f64,
    /// Per-rank finish instants.
    pub finish_times: Vec<SimTime>,
    /// Scenario checksum (scenario-defined; bitwise-reproducible).
    pub checksum: f64,
    /// Engine barrier epochs executed (diagnostic — varies with sharding).
    pub epochs: u64,
    /// Cross-shard messages (diagnostic — varies with sharding).
    pub remote_messages: u64,
    /// Merged deterministic event log (empty unless `log_events`).
    pub log: Vec<LogEntry>,
}

/// Pairwise-exchange alltoall (the paper's §5 aggregate-bandwidth
/// pattern): `ranks - 1` steps, each rank sending `bytes` to
/// `(rank + step) % p` while receiving from `(rank - step) % p`.
pub fn alltoall(sc: &PdesScenario, bytes: u64) -> PdesRun {
    let out = simulate_sharded(&sc.to_config(), |mpi| async move {
        let p = mpi.size();
        let mut got = 0u64;
        for step in 1..p {
            let dst = (mpi.rank() + step) % p;
            let src = (mpi.rank() + p - step) % p;
            got += mpi.sendrecv(dst, src, step as u64, bytes).await;
        }
        mpi.log(format!("alltoall rank {} received {got} B", mpi.rank()));
    });
    let time_s = out.end_time.as_secs_f64();
    PdesRun {
        time_s,
        checksum: (out.finish_times.iter().map(|t| t.as_ps() as u128).sum::<u128>() % (1 << 52))
            as f64,
        finish_times: out.finish_times,
        epochs: out.epochs,
        remote_messages: out.remote_messages,
        log: out.log,
    }
}

/// Iterated 1-D ring halo exchange + allreduce (the inner loop shape of
/// the paper's climate/ocean proxies): each iteration computes, swaps
/// `bytes` with both ring neighbours, then allreduces one running value.
/// The checksum is the final allreduce result — bitwise partition-proof.
pub fn halo_allreduce(sc: &PdesScenario, bytes: u64, iters: usize) -> PdesRun {
    use std::sync::{Arc, Mutex};
    let checksum: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
    let sink = Arc::clone(&checksum);
    let out = simulate_sharded(&sc.to_config(), move |mpi| {
        let sink = Arc::clone(&sink);
        async move {
            let p = mpi.size();
            let right = (mpi.rank() + 1) % p;
            let left = (mpi.rank() + p - 1) % p;
            let mut local = mpi.rank() as f64 + 1.0;
            for it in 0..iters {
                // Unequal compute: ranks drift apart, so the halo swap and
                // the collective both do real synchronisation work.
                let us = 5 + ((mpi.rank() * 7 + it * 3) % 11) as u64;
                mpi.compute(SimDuration::from_us(us)).await;
                let tag = 2 * it as u64;
                mpi.sendrecv(right, left, tag, bytes).await;
                mpi.sendrecv(left, right, tag + 1, bytes).await;
                let sum = mpi.allreduce(vec![local]).await;
                local = sum[0] / p as f64 + mpi.rank() as f64 * 1e-3;
            }
            let total = mpi.allreduce(vec![local]).await;
            if mpi.rank() == 0 {
                *sink.lock().unwrap() = total[0];
            }
            mpi.log(format!("halo rank {} local {local:.6}", mpi.rank()));
        }
    });
    let time_s = out.end_time.as_secs_f64();
    let checksum = *checksum.lock().unwrap();
    PdesRun {
        time_s,
        checksum,
        finish_times: out.finish_times,
        epochs: out.epochs,
        remote_messages: out.remote_messages,
        log: out.log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    fn sc(ranks: usize) -> PdesScenario {
        let mut s = PdesScenario::new(presets::xt4(), ExecMode::VN, ranks);
        s.log_events = true;
        s
    }

    #[test]
    fn alltoall_matches_serial_reference() {
        let base = alltoall(&sc(16), 2048);
        assert!(base.time_s > 0.0);
        for (shards, threads) in [(2, 2), (4, 4)] {
            let run = alltoall(&sc(16).sharded(shards, threads), 2048);
            assert_eq!(run.finish_times, base.finish_times);
            assert_eq!(run.log, base.log);
            assert_eq!(run.time_s, base.time_s);
        }
    }

    #[test]
    fn halo_checksum_is_sharding_proof() {
        let base = halo_allreduce(&sc(12), 1024, 5);
        assert!(base.checksum.is_finite() && base.checksum != 0.0);
        for (shards, threads) in [(2, 1), (3, 3), (4, 2)] {
            let run = halo_allreduce(&sc(12).sharded(shards, threads), 1024, 5);
            assert_eq!(run.checksum.to_bits(), base.checksum.to_bits());
            assert_eq!(run.finish_times, base.finish_times);
            assert_eq!(run.log, base.log);
        }
    }
}
