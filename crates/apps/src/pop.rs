//! POP proxy — the Parallel Ocean Program, 0.1° benchmark (§6.2,
//! Figures 17–19).
//!
//! Per step:
//!
//! * **baroclinic** phase: 3-D compute over the local block plus a
//!   4-neighbour halo exchange — scales well everywhere (paper);
//! * **barotropic** phase: a 2-D implicit solve by conjugate gradient —
//!   every iteration is a thin halo exchange plus inner-product
//!   `MPI_Allreduce`s (two for standard CG, one for the Chronopoulos–Gear
//!   variant backported from POP 2.1), making it latency-bound and flat
//!   with scale.
//!
//! The CG iteration count comes from the real solver in
//! [`xtsim_kernels::cg`] (measured once on a reduced grid with the same
//! operator); the simulation replays `CG_SAMPLE` iterations and scales.

use xtsim_machine::{ExecMode, MachineSpec};
use xtsim_mpi::{simulate, Message, ReduceOp};

use crate::common::{app_job, grid_2d, BalancedWork, PhaseMarks, SECS_PER_YEAR};

/// Horizontal grid (0.1°: 3600 × 2400), 40 levels.
pub const NX: usize = 3600;
/// Latitude points.
pub const NY: usize = 2400;
/// Depth levels.
pub const NZ: usize = 40;
/// Model seconds per step.
pub const DT_SECS: f64 = 300.0;
/// Baroclinic cost, flops per 3-D grid point per step (calibrated).
pub const BARO_FLOPS_PER_PT: f64 = 1_150.0;
/// Effective DRAM bytes per flop. POP is strongly memory-bound: the paper
/// notes the single→dual-core clock bump "did not improve performance
/// measurably" while the memory upgrade did.
pub const MEM_INTENSITY: f64 = 8.0;
/// Contended fraction of that traffic in VN mode.
pub const CONTENDED_FRACTION: f64 = 0.25;
/// Barotropic CG iterations per step (typical production count for the
/// 0.1° grid).
pub const CG_ITERS_PER_STEP: usize = 200;
/// CG iterations actually simulated per step (then scaled).
pub const CG_SAMPLE: usize = 10;
/// Flops per 2-D point per CG iteration (SpMV + vector ops).
pub const CG_FLOPS_PER_PT: f64 = 16.0;

/// Which barotropic solver variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Standard CG: two `MPI_Allreduce` per iteration.
    StandardCg,
    /// Chronopoulos–Gear: fused inner products, one `MPI_Allreduce`.
    ChronopoulosGear,
}

impl Solver {
    /// Reductions per iteration.
    pub fn reductions_per_iter(self) -> usize {
        match self {
            Solver::StandardCg => 2,
            Solver::ChronopoulosGear => 1,
        }
    }
}

/// POP benchmark result.
#[derive(Debug, Clone, Copy)]
pub struct PopResult {
    /// Simulated years per wall-clock day.
    pub years_per_day: f64,
    /// Baroclinic wall seconds per simulated day.
    pub baroclinic_secs_per_day: f64,
    /// Barotropic wall seconds per simulated day.
    pub barotropic_secs_per_day: f64,
}

/// Run the 0.1° benchmark with `tasks` MPI tasks.
pub fn pop(machine: &MachineSpec, mode: ExecMode, tasks: usize, solver: Solver) -> Option<PopResult> {
    if tasks == 0 || tasks > machine.max_ranks(mode).max(24_000) {
        return None;
    }
    let (px, py) = grid_2d(tasks);
    if px > NX || py > NY {
        return None;
    }
    let nx_loc = NX / px;
    let ny_loc = NY / py;
    let pts3d = (nx_loc * ny_loc * NZ) as f64;
    let pts2d = (nx_loc * ny_loc) as f64;
    let baro = BalancedWork::new(
        machine,
        BARO_FLOPS_PER_PT * pts3d,
        MEM_INTENSITY,
        CONTENDED_FRACTION,
        1.45,
    );
    let cg_iter = BalancedWork::new(
        machine,
        CG_FLOPS_PER_PT * pts2d,
        MEM_INTENSITY,
        CONTENDED_FRACTION,
        1.45,
    );
    // Halo widths: 2 ghost cells, 3 tracers × 40 levels (baroclinic);
    // 1 field × 1 level (barotropic).
    let baro_halo_x = (2 * ny_loc * NZ * 3 * 8) as u64;
    let baro_halo_y = (2 * nx_loc * NZ * 3 * 8) as u64;
    let cg_halo_x = (2 * ny_loc * 8) as u64;
    let cg_halo_y = (2 * nx_loc * 8) as u64;

    let marks = PhaseMarks::new();
    let marks2 = marks.clone();
    let cfg = app_job(machine, mode, tasks);
    let reductions = solver.reductions_per_iter();
    simulate(32, cfg, move |mpi| {
        let marks = marks2.clone();
        async move {
            let me = mpi.rank();
            let (ix, iy) = (me % px, me / px);
            let east = (ix + 1 < px).then(|| me + 1);
            let west = (ix > 0).then(|| me - 1);
            let north = (iy + 1 < py).then(|| me + px);
            let south = (iy > 0).then(|| me - px);
            let neighbours = |bx: u64, by: u64| {
                [
                    (east, bx),
                    (west, bx),
                    (north, by),
                    (south, by),
                ]
            };
            // --- baroclinic phase (one step) ---
            baro.run(&mpi).await;
            let mut sends = Vec::new();
            for (k, (nb, bytes)) in neighbours(baro_halo_x, baro_halo_y).into_iter().enumerate() {
                if let Some(nb) = nb {
                    sends.push(mpi.isend(nb, 200 + k as u64, Message::of_bytes(bytes)));
                }
            }
            // Matching receives: east's west-message has tag 201, etc.
            let pairs = [(east, 201u64), (west, 200), (north, 203), (south, 202)];
            for (nb, tag) in pairs {
                if let Some(nb) = nb {
                    mpi.recv(Some(nb), Some(tag)).await;
                }
            }
            for s in sends {
                s.await;
            }
            marks.mark(0, mpi.now().as_secs_f64());
            // --- barotropic phase: CG_SAMPLE iterations ---
            for it in 0..CG_SAMPLE {
                cg_iter.run(&mpi).await;
                let base = 300 + 4 * it as u64;
                let mut sends = Vec::new();
                for (k, (nb, bytes)) in neighbours(cg_halo_x, cg_halo_y).into_iter().enumerate() {
                    if let Some(nb) = nb {
                        sends.push(mpi.isend(nb, base + k as u64, Message::of_bytes(bytes)));
                    }
                }
                let pairs = [
                    (east, base + 1),
                    (west, base),
                    (north, base + 3),
                    (south, base + 2),
                ];
                for (nb, tag) in pairs {
                    if let Some(nb) = nb {
                        mpi.recv(Some(nb), Some(tag)).await;
                    }
                }
                for s in sends {
                    s.await;
                }
                for _ in 0..reductions {
                    mpi.comm().allreduce(vec![1.0], ReduceOp::Sum).await;
                }
            }
            marks.mark(1, mpi.now().as_secs_f64());
        }
    });
    let baro_t = marks.phase(0);
    let cg_sample_t = marks.phase(1);
    let barotropic_t = cg_sample_t * CG_ITERS_PER_STEP as f64 / CG_SAMPLE as f64;
    let step_t = baro_t + barotropic_t;
    let steps_per_sim_day = 86_400.0 / DT_SECS;
    Some(PopResult {
        years_per_day: DT_SECS * 86_400.0 / (step_t * SECS_PER_YEAR),
        baroclinic_secs_per_day: baro_t * steps_per_sim_day,
        barotropic_secs_per_day: barotropic_t * steps_per_sim_day,
    })
}

/// Cross-check used by the figure harness: the iteration counts and the 2:1
/// reduction ratio come from the *real* solvers on a reduced version of the
/// same operator.
pub fn solver_reduction_ratio() -> f64 {
    use xtsim_kernels::cg::{cg, cg_chronopoulos_gear, laplacian_2d};
    let a = laplacian_2d(60, 40);
    let b: Vec<f64> = (0..a.n).map(|i| ((i * 37) % 17) as f64 - 8.0).collect();
    let std = cg(&a, &b, 1e-8, 5000);
    let cgv = cg_chronopoulos_gear(&a, &b, 1e-8, 5000);
    assert!(std.converged && cgv.converged);
    (std.reductions as f64 / std.iterations as f64)
        / (cgv.reductions as f64 / cgv.iterations as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn real_solvers_motivate_the_variant() {
        // The C-G variant halves reductions per iteration (paper §6.2).
        let ratio = solver_reduction_ratio();
        assert!((ratio - 2.0).abs() < 0.1, "{ratio}");
    }

    #[test]
    fn pop_scales_then_flattens() {
        let m = presets::xt4();
        let r500 = pop(&m, ExecMode::VN, 512, Solver::StandardCg).unwrap();
        let r2000 = pop(&m, ExecMode::VN, 2048, Solver::StandardCg).unwrap();
        assert!(r2000.years_per_day > 2.0 * r500.years_per_day);
        // Barotropic time does not improve like baroclinic does.
        let baro_speedup = r500.baroclinic_secs_per_day / r2000.baroclinic_secs_per_day;
        let barot_speedup = r500.barotropic_secs_per_day / r2000.barotropic_secs_per_day;
        assert!(baro_speedup > 1.5 * barot_speedup, "{baro_speedup} vs {barot_speedup}");
    }

    #[test]
    fn chronopoulos_gear_beats_standard_at_scale() {
        let m = presets::xt4();
        let std = pop(&m, ExecMode::VN, 4096, Solver::StandardCg).unwrap();
        let cgv = pop(&m, ExecMode::VN, 4096, Solver::ChronopoulosGear).unwrap();
        assert!(
            cgv.years_per_day > 1.08 * std.years_per_day,
            "{cgv:?} vs {std:?}"
        );
        // The win comes from the barotropic phase specifically.
        assert!(
            cgv.barotropic_secs_per_day < 0.75 * std.barotropic_secs_per_day,
            "{cgv:?} vs {std:?}"
        );
    }

    #[test]
    fn xt4_beats_xt3_at_fixed_tasks() {
        let xt3 = pop(&presets::xt3_single(), ExecMode::SN, 512, Solver::StandardCg).unwrap();
        let xt4 = pop(&presets::xt4(), ExecMode::SN, 512, Solver::StandardCg).unwrap();
        assert!(xt4.years_per_day > xt3.years_per_day);
    }

    #[test]
    fn vn_doubles_node_throughput_reasonably() {
        // Paper: 10,000 VN tasks vs 5,000 SN tasks (same node count) gave
        // ~40% more throughput. Check the same-node-count comparison at a
        // reduced scale: VN with 2× tasks beats SN but by less than 2×.
        let m = presets::xt4();
        let sn = pop(&m, ExecMode::SN, 1024, Solver::StandardCg).unwrap();
        let vn = pop(&m, ExecMode::VN, 2048, Solver::StandardCg).unwrap();
        let gain = vn.years_per_day / sn.years_per_day;
        assert!(gain > 1.1 && gain < 1.9, "gain {gain}");
    }

    #[test]
    fn barotropic_dominates_at_large_task_counts() {
        // Figure 19: barotropic is the dominant cost at scale.
        let m = presets::xt4();
        let r = pop(&m, ExecMode::VN, 16_384, Solver::StandardCg).unwrap();
        assert!(
            r.barotropic_secs_per_day > r.baroclinic_secs_per_day,
            "{r:?}"
        );
    }
}
