//! CAM proxy — the Community Atmosphere Model, FV dycore, "D-grid"
//! benchmark (§6.1, Figures 14–16).
//!
//! Phase structure per timestep (matching the paper's description):
//!
//! 1. dynamics half A on the (lat, lon) decomposition: compute + latitude
//!    halo exchange;
//! 2. remap to the (lat, vertical) decomposition: `alltoallv` within each
//!    latitude row group;
//! 3. dynamics half B + halo;
//! 4. remap back;
//! 5. physics: column compute (≈ half the dynamics cost), a load-balancing
//!    `alltoallv`, and a small land-model `alltoallv`.
//!
//! The 1-D latitude decomposition caps at 120 tasks (≥ 3 latitudes each);
//! the 2-D (lat × vertical) decomposition caps at 120 × 8 = 960.

use xtsim_machine::{ExecMode, MachineSpec};
use xtsim_mpi::{simulate_profiled, JobProfile, Message};

use crate::common::{app_job, BalancedWork, PhaseMarks, SECS_PER_YEAR};

/// D-grid dimensions (361 × 576 horizontal, 26 levels).
pub const NLAT: usize = 361;
/// Longitudes.
pub const NLON: usize = 576;
/// Vertical levels.
pub const NLEV: usize = 26;
/// Model seconds advanced per timestep.
pub const DT_SECS: f64 = 1800.0;
/// Prognostic variables carried per point.
pub const NVARS: usize = 5;

/// Calibrated dynamics cost, flops per grid point per step.
pub const DYN_FLOPS_PER_PT: f64 = 39_000.0;
/// Physics is approximately half the dynamics cost (paper, Figure 16).
pub const PHYS_FLOPS_PER_PT: f64 = 19_500.0;
/// Effective DRAM bytes per flop (application balance constant; drives the
/// DDR-400 → DDR2-667 sensitivity the paper reports for CAM).
pub const MEM_INTENSITY: f64 = 4.8;
/// Fraction of that traffic contending on the shared controller in VN mode.
pub const CONTENDED_FRACTION: f64 = 0.25;
/// Flop-phase efficiency scale over the machine's sustained fraction.
pub const EFF_SCALE: f64 = 1.45;

/// A feasible decomposition: `plat` latitude bands × `pz` vertical/longitude
/// subdivisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CamDecomp {
    /// Latitude-direction task count (≤ 120).
    pub plat: usize,
    /// Secondary-direction task count (1 = pure 1-D; ≤ 8).
    pub pz: usize,
}

/// Choose the decomposition for `tasks` MPI tasks, or `None` if infeasible
/// (the paper's constraint set: ≥3 latitudes and ≥3 levels per task).
pub fn decompose(tasks: usize) -> Option<CamDecomp> {
    if tasks == 0 || tasks > 960 {
        return None;
    }
    if tasks <= 120 {
        return Some(CamDecomp { plat: tasks, pz: 1 });
    }
    for pz in 2..=8usize {
        if tasks.is_multiple_of(pz) && tasks / pz <= 120 {
            return Some(CamDecomp {
                plat: tasks / pz,
                pz,
            });
        }
    }
    None
}

/// Result of a CAM benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct CamResult {
    /// Throughput, simulated years per wall-clock day.
    pub years_per_day: f64,
    /// Dynamics cost, wall seconds per simulated day.
    pub dynamics_secs_per_day: f64,
    /// Physics cost, wall seconds per simulated day.
    pub physics_secs_per_day: f64,
    /// Fraction of total rank-time spent in MPI (profiler; the paper's
    /// §6.1 attributes the SN/VN gap to MPI_Alltoallv via this kind of
    /// accounting).
    pub mpi_fraction: f64,
}

/// Run the D-grid benchmark with `tasks` MPI tasks on `machine` in `mode`,
/// with `threads` OpenMP threads per task (1 on Cray systems — the paper
/// notes OpenMP was not yet available on the XT4).
pub fn cam(machine: &MachineSpec, mode: ExecMode, tasks: usize, threads: usize) -> Option<CamResult> {
    let decomp = decompose(tasks)?;
    let steps = 2usize;
    let points = NLAT * NLON * NLEV;
    let pts_per_task = points as f64 / tasks as f64;

    // Per-task compute rate: OpenMP threads multiply the core (85% parallel
    // efficiency); vector machines lose efficiency once the per-task work
    // no longer fills the pipes (paper: below ~128 at 960 tasks).
    let mut vec_factor = 1.0;
    if let Some(v) = &machine.app.vector {
        let vec_len = (NLAT * NLON) as f64 / tasks as f64 * 0.5;
        if vec_len < v.min_efficient_length {
            vec_factor = (vec_len / v.min_efficient_length).max(v.short_vector_fraction);
        }
    }
    let thread_speedup = 1.0 + 0.85 * (threads.saturating_sub(1)) as f64;

    let dyn_half = BalancedWork::new(
        machine,
        DYN_FLOPS_PER_PT * pts_per_task / 2.0 / thread_speedup,
        MEM_INTENSITY,
        CONTENDED_FRACTION,
        EFF_SCALE,
    )
    .scale_rate(vec_factor);
    let phys = BalancedWork::new(
        machine,
        PHYS_FLOPS_PER_PT * pts_per_task / thread_speedup,
        MEM_INTENSITY,
        CONTENDED_FRACTION,
        EFF_SCALE,
    )
    .scale_rate(vec_factor);
    // Latitude halo: ghost width 3, full local longitude strip, all levels.
    let lon_local = NLON / decomp.pz.max(1);
    let halo_bytes = (3 * lon_local * NLEV * NVARS * 8) as u64;
    // Remap: everything but your diagonal share crosses the row group.
    let local_bytes = (pts_per_task * NVARS as f64 * 8.0) as u64;
    let remap_to_each = if decomp.pz > 1 {
        local_bytes / decomp.pz as u64
    } else {
        0
    };
    // Physics load balancing + land model coupling (paper: the dominant
    // MPI_Alltoallv cost in the physics at scale).
    let lb_to_each = (0.3 * local_bytes as f64 / tasks as f64) as u64;

    let marks = PhaseMarks::new();
    let marks2 = marks.clone();
    let cfg = app_job(machine, mode, tasks);
    let plat = decomp.plat;
    let pz = decomp.pz;
    let (_out, profiles) = simulate_profiled(31, cfg, move |mpi| {
        let marks = marks2.clone();
        async move {
            let me = mpi.rank();
            let (lat_idx, z_idx) = (me / pz, me % pz);
            // Row group: the pz tasks sharing this latitude band.
            let row: Vec<usize> = (0..pz).map(|z| lat_idx * pz + z).collect();
            let row_comm = mpi.comm().sub(&row).expect("member of own row");
            let up = (lat_idx + 1 < plat).then(|| (lat_idx + 1) * pz + z_idx);
            let down = (lat_idx > 0).then(|| (lat_idx - 1) * pz + z_idx);
            let mut phase = 0usize;
            for step in 0..steps {
                // --- dynamics ---
                for half in 0..2u64 {
                    dyn_half.run(&mpi).await;
                    let tag = 100 + step as u64 * 4 + half * 2;
                    let mut pending = Vec::new();
                    if let Some(up) = up {
                        pending.push(mpi.isend(up, tag, Message::of_bytes(halo_bytes)));
                    }
                    if let Some(down) = down {
                        pending.push(mpi.isend(down, tag + 1, Message::of_bytes(halo_bytes)));
                    }
                    if let Some(down) = down {
                        mpi.recv(Some(down), Some(tag)).await;
                    }
                    if let Some(up) = up {
                        mpi.recv(Some(up), Some(tag + 1)).await;
                    }
                    for p in pending {
                        p.await;
                    }
                    // Remap between the two 2-D decompositions.
                    if pz > 1 {
                        let sizes: Vec<u64> = (0..pz)
                            .map(|z| if z == z_idx { 0 } else { remap_to_each })
                            .collect();
                        row_comm.alltoallv_bytes(&sizes).await;
                    }
                }
                marks.mark(phase, mpi.now().as_secs_f64());
                phase += 1;
                // --- physics ---
                phys.run(&mpi).await;
                let lb: Vec<u64> = (0..tasks)
                    .map(|t| if t == me { 0 } else { lb_to_each })
                    .collect();
                mpi.comm().alltoallv_bytes(&lb).await;
                // Land-model coupling: small alltoallv.
                let land: Vec<u64> = (0..tasks)
                    .map(|t| if t == me { 0 } else { lb_to_each / 8 })
                    .collect();
                mpi.comm().alltoallv_bytes(&land).await;
                marks.mark(phase, mpi.now().as_secs_f64());
                phase += 1;
            }
        }
    });
    let job = JobProfile::from_ranks(&profiles);
    let bounds = marks.boundaries();
    let wall_per_step = bounds.last().copied().unwrap_or(0.0) / steps as f64;
    // Per-phase times averaged over steps.
    let mut dyn_t = 0.0;
    let mut phys_t = 0.0;
    for s in 0..steps {
        dyn_t += marks.phase(2 * s);
        phys_t += marks.phase(2 * s + 1);
    }
    let steps_per_sim_day = 86_400.0 / DT_SECS;
    Some(CamResult {
        years_per_day: DT_SECS * 86_400.0 / (wall_per_step * SECS_PER_YEAR),
        dynamics_secs_per_day: dyn_t / steps as f64 * steps_per_sim_day,
        physics_secs_per_day: phys_t / steps as f64 * steps_per_sim_day,
        mpi_fraction: {
            let t = job.total.total_secs();
            if t > 0.0 {
                (job.total.p2p_secs + job.total.collective_secs) / t
            } else {
                0.0
            }
        },
    })
}

/// Figure 15 helper: best throughput for a processor count on a platform,
/// optimizing over OpenMP thread counts the platform supports.
pub fn cam_best(machine: &MachineSpec, mode: ExecMode, processors: usize) -> Option<CamResult> {
    let mut best: Option<CamResult> = None;
    let max_t = machine.app.smp_threads_per_task.max(1) as usize;
    let mut t = 1;
    while t <= max_t {
        if processors.is_multiple_of(t) {
            if let Some(r) = cam(machine, mode, processors / t, t) {
                if best.is_none_or(|b| r.years_per_day > b.years_per_day) {
                    best = Some(r);
                }
            }
        }
        t *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn decomposition_respects_paper_limits() {
        assert_eq!(decompose(64), Some(CamDecomp { plat: 64, pz: 1 }));
        assert_eq!(decompose(120), Some(CamDecomp { plat: 120, pz: 1 }));
        assert_eq!(decompose(240), Some(CamDecomp { plat: 120, pz: 2 }));
        assert_eq!(decompose(960), Some(CamDecomp { plat: 120, pz: 8 }));
        assert_eq!(decompose(961), None);
        assert_eq!(decompose(977), None); // prime > 120: no legal split
    }

    #[test]
    fn cam_scales_with_tasks() {
        let m = presets::xt4();
        let small = cam(&m, ExecMode::VN, 32, 1).unwrap();
        let large = cam(&m, ExecMode::VN, 256, 1).unwrap();
        assert!(large.years_per_day > 4.0 * small.years_per_day);
    }

    #[test]
    fn xt4_beats_xt3_dual_beats_single() {
        // Figure 14 ordering at a fixed task count.
        let t = 96;
        let xt3 = cam(&presets::xt3_single(), ExecMode::SN, t, 1).unwrap();
        let xt3d = cam(&presets::xt3_dual(), ExecMode::VN, t, 1).unwrap();
        let xt4 = cam(&presets::xt4(), ExecMode::VN, t, 1).unwrap();
        assert!(xt4.years_per_day > xt3d.years_per_day, "{xt4:?} vs {xt3d:?}");
        assert!(xt3d.years_per_day > xt3.years_per_day, "{xt3d:?} vs {xt3:?}");
    }

    #[test]
    fn sn_beats_vn_at_same_task_count() {
        // Paper: ~10% SN advantage at the same MPI task count.
        let t = 240;
        let sn = cam(&presets::xt4(), ExecMode::SN, t, 1).unwrap();
        let vn = cam(&presets::xt4(), ExecMode::VN, t, 1).unwrap();
        assert!(sn.years_per_day > vn.years_per_day, "{sn:?} vs {vn:?}");
        assert!(
            sn.years_per_day < 1.4 * vn.years_per_day,
            "SN advantage implausibly large: {sn:?} vs {vn:?}"
        );
    }

    #[test]
    fn dynamics_costs_about_twice_physics() {
        // Figure 16: dynamics ≈ 2× physics for this dycore and problem.
        let r = cam(&presets::xt4(), ExecMode::SN, 120, 1).unwrap();
        let ratio = r.dynamics_secs_per_day / r.physics_secs_per_day;
        assert!(ratio > 1.5 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn openmp_helps_smp_platforms() {
        let p690 = presets::p690();
        let with = cam_best(&p690, ExecMode::SN, 512).unwrap();
        let without = cam(&p690, ExecMode::SN, 512, 1);
        // 512 tasks needs pz>4… either infeasible or slower than threading.
        if let Some(w) = without {
            assert!(with.years_per_day >= w.years_per_day);
        }
    }
}
