//! S3D proxy — direct numerical simulation of turbulent combustion (§6.4,
//! Figure 22).
//!
//! Weak scaling with 50³ grid points per MPI task. Each step is a 6-stage
//! Runge–Kutta advance; every stage evaluates eighth-order derivatives
//! (9-point stencils) and the tenth-order filter (11-point), requiring a
//! ghost exchange with the six nearest neighbours of the 3-D task grid —
//! point-to-point only, which is why S3D scales so well (collectives appear
//! only in diagnostics).
//!
//! The paper attributes the 30% VN-mode slowdown to *memory bandwidth
//! contention*, not MPI: the compute packet therefore carries a streaming
//! component calibrated so two cores sharing a controller lose ≈30%.

use xtsim_machine::{ExecMode, MachineSpec, WorkPacket};
use xtsim_mpi::{simulate, Message};

use crate::common::{app_job, grid_3d};

/// Grid points per task per dimension (weak scaling block).
pub const LOCAL_N: usize = 50;
/// Runge–Kutta stages per step.
pub const RK_STAGES: usize = 6;
/// Ghost width (the 11-point filter needs 5).
pub const GHOST: usize = 5;
/// Coupled variables (momentum, energy, species for a skeletal mechanism).
pub const NVARS: usize = 9;
/// Calibrated total flops per grid point per step (detailed chemistry makes
/// S3D compute-heavy: tens of microseconds of core time per point).
pub const FLOPS_PER_PT: f64 = 14_500.0;
/// Calibrated *contended* effective traffic per point per step. This is an
/// effective constant (it absorbs latency-bound reloads, TLB pressure and
/// write-allocate traffic the stream model does not resolve) chosen so the
/// memory phase is ≈43% of the flop phase on the XT4 — which makes two
/// cores sharing the controller cost ≈1.3× (the paper's measured VN/SN
/// ratio) while a single core sees the measured ~48 µs/point.
pub const SHARED_BYTES_PER_PT: f64 = 83_000.0;

/// Result: the paper's metric, µs of core time per grid point per step.
#[derive(Debug, Clone, Copy)]
pub struct S3dResult {
    /// Wall seconds per timestep.
    pub secs_per_step: f64,
    /// Cost per grid point per step, µs (= wall/points-per-task since the
    /// scaling is weak).
    pub cost_us_per_point: f64,
}

/// Run the weak-scaling test on `tasks` MPI tasks.
pub fn s3d(machine: &MachineSpec, mode: ExecMode, tasks: usize) -> S3dResult {
    let pts = (LOCAL_N * LOCAL_N * LOCAL_N) as f64;
    let eff = machine.app.sustained_fraction;
    // Flop phase and memory phase are issued as separate packets: the
    // high-order stencil sweeps do not overlap their DRAM streams with the
    // chemistry flops, so the costs are additive (this is what makes the
    // VN-mode ratio land at 1.3 rather than 2.0).
    let stage_flops = WorkPacket {
        flops: FLOPS_PER_PT * pts / RK_STAGES as f64,
        flop_efficiency: eff,
        ..Default::default()
    };
    let stage_mem = WorkPacket {
        flop_efficiency: 1.0,
        shared_dram_bytes: SHARED_BYTES_PER_PT * pts / RK_STAGES as f64,
        ..Default::default()
    };
    // Face ghost layer: 50×50×5 points × NVARS × 8 bytes.
    let face_bytes = (LOCAL_N * LOCAL_N * GHOST * NVARS * 8) as u64;

    let cfg = app_job(machine, mode, tasks);
    let (gx, gy, gz) = grid_3d(tasks);
    let out = simulate(34, cfg, move |mpi| async move {
        let me = mpi.rank();
        let (x, y, z) = (me % gx, (me / gx) % gy, me / (gx * gy));
        let wrap = |v: usize, d: usize, up: bool| -> usize {
            if up {
                (v + 1) % d
            } else {
                (v + d - 1) % d
            }
        };
        let nb = |x: usize, y: usize, z: usize| x + y * gx + z * gx * gy;
        let neighbours = [
            nb(wrap(x, gx, true), y, z),
            nb(wrap(x, gx, false), y, z),
            nb(x, wrap(y, gy, true), z),
            nb(x, wrap(y, gy, false), z),
            nb(x, y, wrap(z, gz, true)),
            nb(x, y, wrap(z, gz, false)),
        ];
        let opposite = [1usize, 0, 3, 2, 5, 4];
        for stage_idx in 0..RK_STAGES as u64 {
            // Nonblocking ghost exchange with all six neighbours.
            let base = 500 + stage_idx * 8;
            let mut sends = Vec::new();
            for (k, &n) in neighbours.iter().enumerate() {
                if n != me {
                    sends.push(mpi.isend(n, base + k as u64, Message::of_bytes(face_bytes)));
                }
            }
            for (k, &n) in neighbours.iter().enumerate() {
                if n != me {
                    mpi.recv(Some(n), Some(base + opposite[k] as u64)).await;
                }
            }
            for s in sends {
                s.await;
            }
            mpi.compute(stage_flops).await;
            mpi.compute(stage_mem).await;
        }
    });
    let secs = out.end_time.as_secs_f64();
    S3dResult {
        secs_per_step: secs,
        cost_us_per_point: secs / pts * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn single_core_cost_in_paper_band() {
        // Figure 22: XT4 ~45-55 µs/point/step, XT3 ~60-75.
        let xt4 = s3d(&presets::xt4(), ExecMode::SN, 1);
        let xt3 = s3d(&presets::xt3_single(), ExecMode::SN, 1);
        assert!(
            xt4.cost_us_per_point > 33.0 && xt4.cost_us_per_point < 55.0,
            "XT4 {xt4:?}"
        );
        assert!(xt3.cost_us_per_point > 1.2 * xt4.cost_us_per_point, "{xt3:?} vs {xt4:?}");
        // Multi-task VN runs (the lines of Figure 22): XT3-DC ~60-75,
        // XT4 ~45-55, gap ≈ 1.2-1.4x.
        let xt3_vn = s3d(&presets::xt3_dual(), ExecMode::VN, 8);
        let xt4_vn = s3d(&presets::xt4(), ExecMode::VN, 8);
        assert!(
            xt3_vn.cost_us_per_point > 55.0 && xt3_vn.cost_us_per_point < 78.0,
            "XT3-DC VN {xt3_vn:?}"
        );
        assert!(
            xt4_vn.cost_us_per_point > 42.0 && xt4_vn.cost_us_per_point < 58.0,
            "XT4 VN {xt4_vn:?}"
        );
    }

    #[test]
    fn weak_scaling_is_nearly_flat() {
        // Nearest-neighbour-only communication: cost rises only mildly.
        let m = presets::xt4();
        let r1 = s3d(&m, ExecMode::VN, 8);
        let r2 = s3d(&m, ExecMode::VN, 512);
        let rise = r2.cost_us_per_point / r1.cost_us_per_point;
        assert!(rise < 1.25, "weak scaling broke: {rise}");
    }

    #[test]
    fn vn_mode_costs_about_30_percent() {
        // Paper: "an increase in execution time of roughly 30%" from the
        // second core, attributed to memory-bandwidth contention.
        let m = presets::xt4();
        let sn = s3d(&m, ExecMode::SN, 64);
        let vn = s3d(&m, ExecMode::VN, 64);
        let ratio = vn.secs_per_step / sn.secs_per_step;
        assert!(ratio > 1.2 && ratio < 1.45, "VN/SN {ratio}");
    }

    #[test]
    fn same_cost_for_sn_jobs_of_different_sizes() {
        // Paper: one task vs two tasks in SN mode — same execution time
        // (rules out MPI overhead as the VN culprit).
        let m = presets::xt4();
        let one = s3d(&m, ExecMode::SN, 1);
        let two = s3d(&m, ExecMode::SN, 2);
        let ratio = two.secs_per_step / one.secs_per_step;
        assert!(ratio < 1.1, "{ratio}");
    }
}
