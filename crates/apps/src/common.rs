//! Shared plumbing for the application proxies.

use std::cell::RefCell;
use std::rc::Rc;

use xtsim_machine::{fit_dims, ExecMode, MachineSpec};
use xtsim_mpi::{CollectiveMode, WorldConfig};
use xtsim_net::{ContentionModel, PlatformConfig};

/// Seconds in a simulated calendar year (365.25 days).
pub const SECS_PER_YEAR: f64 = 365.25 * 86400.0;

/// Build a job world for an app run: compact partition, automatic collective
/// mode, counting contention for big jobs.
pub fn app_job(machine: &MachineSpec, mode: ExecMode, ranks: usize) -> WorldConfig {
    let mut spec = machine.clone();
    let nodes = ranks.div_ceil(spec.ranks_per_node(mode));
    spec.torus_dims = fit_dims(nodes);
    let mut platform = PlatformConfig::new(spec, mode, ranks);
    if ranks > 256 {
        platform.contention = ContentionModel::Counting;
    }
    let mut cfg = WorldConfig::new(platform);
    if ranks > 128 {
        cfg.collectives = CollectiveMode::Modeled;
    }
    cfg
}

/// Phase stopwatch shared by all ranks: records the *latest* end of each
/// phase index (the job-level phase boundary).
#[derive(Clone, Default)]
pub struct PhaseMarks {
    marks: Rc<RefCell<Vec<f64>>>,
}

impl PhaseMarks {
    /// Fresh stopwatch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that this rank finished phase `idx` at `now` seconds.
    pub fn mark(&self, idx: usize, now: f64) {
        let mut m = self.marks.borrow_mut();
        if m.len() <= idx {
            m.resize(idx + 1, 0.0);
        }
        m[idx] = m[idx].max(now);
    }

    /// Duration of phase `idx` (between consecutive phase boundaries).
    pub fn phase(&self, idx: usize) -> f64 {
        let m = self.marks.borrow();
        if idx == 0 {
            m.first().copied().unwrap_or(0.0)
        } else {
            m[idx] - m[idx - 1]
        }
    }

    /// All boundaries.
    pub fn boundaries(&self) -> Vec<f64> {
        self.marks.borrow().clone()
    }
}

/// Near-square 2-D factorization of `p` (prefers px ≥ py, px/py small).
pub fn grid_2d(p: usize) -> (usize, usize) {
    let mut best = (p, 1);
    let mut i = 1;
    while i * i <= p {
        if p.is_multiple_of(i) {
            best = (p / i, i);
        }
        i += 1;
    }
    best
}

/// Near-cubic 3-D factorization of `p`.
pub fn grid_3d(p: usize) -> (usize, usize, usize) {
    let mut best = (p, 1, 1);
    let mut score = f64::INFINITY;
    let mut a = 1;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let rest = p / a;
            let (b, c) = grid_2d(rest);
            let dims = [a, b, c];
            let max = *dims.iter().max().unwrap() as f64;
            let min = *dims.iter().min().unwrap() as f64;
            if max / min < score {
                score = max / min;
                best = (a, c, b);
            }
        }
        a += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_2d_factors() {
        assert_eq!(grid_2d(12), (4, 3));
        assert_eq!(grid_2d(16), (4, 4));
        assert_eq!(grid_2d(7), (7, 1));
        assert_eq!(grid_2d(1), (1, 1));
    }

    #[test]
    fn grid_3d_factors() {
        let (a, b, c) = grid_3d(64);
        assert_eq!(a * b * c, 64);
        assert_eq!((a, b, c), (4, 4, 4));
        let (a, b, c) = grid_3d(100);
        assert_eq!(a * b * c, 100);
    }

    #[test]
    fn phase_marks_take_max() {
        let m = PhaseMarks::new();
        m.mark(0, 1.0);
        m.mark(0, 2.0);
        m.mark(1, 5.0);
        assert_eq!(m.phase(0), 2.0);
        assert_eq!(m.phase(1), 3.0);
    }
}

/// Application compute priced by the balance model: a flop phase plus a
/// memory phase split into a non-contended (single-stream) part and a
/// contended (shared-controller) part. The two phases are *additive* — the
/// dependence-limited sweeps of real science codes do not hide their DRAM
/// time under their flops — which is what lets VN-mode memory contention
/// show through at the measured magnitude rather than all-or-nothing.
#[derive(Debug, Clone, Copy)]
pub struct BalancedWork {
    /// Flop-phase packet.
    pub flop: xtsim_machine::WorkPacket,
    /// Memory-phase packet (serial + contended traffic).
    pub mem: xtsim_machine::WorkPacket,
}

impl BalancedWork {
    /// Price `flops` of application work on `machine`.
    ///
    /// * `intensity` — effective DRAM bytes per flop (an application balance
    ///   constant, calibrated once per app against the paper);
    /// * `contended` — fraction of that traffic that contends on the shared
    ///   memory controller in VN mode;
    /// * `eff_scale` — multiplier on the machine's sustained fraction for
    ///   the flop phase (the sustained fraction folds in memory stalls that
    ///   this model prices separately).
    pub fn new(
        machine: &MachineSpec,
        flops: f64,
        intensity: f64,
        contended: f64,
        eff_scale: f64,
    ) -> BalancedWork {
        let eff = (machine.app.sustained_fraction * eff_scale).min(0.95);
        let bytes = flops * intensity;
        BalancedWork {
            flop: xtsim_machine::WorkPacket {
                flops,
                flop_efficiency: eff,
                ..Default::default()
            },
            mem: xtsim_machine::WorkPacket {
                flop_efficiency: 1.0,
                serial_dram_bytes: bytes * (1.0 - contended),
                shared_dram_bytes: bytes * contended,
                ..Default::default()
            },
        }
    }

    /// Scale the flop phase efficiency (vector-length penalties, OpenMP).
    pub fn scale_rate(mut self, factor: f64) -> BalancedWork {
        self.flop.flop_efficiency = (self.flop.flop_efficiency * factor).clamp(1e-3, 0.95);
        self
    }

    /// Execute both phases on this rank.
    pub async fn run(&self, mpi: &xtsim_mpi::Mpi) {
        mpi.compute(self.flop).await;
        mpi.compute(self.mem).await;
    }

    /// Uncontended seconds (for tests).
    pub fn uncontended_time(&self, machine: &MachineSpec) -> f64 {
        self.flop.uncontended_time(machine) + self.mem.uncontended_time(machine)
    }
}
