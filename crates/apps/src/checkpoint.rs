//! Checkpoint I/O — coupling the application proxies to the Lustre model.
//!
//! The paper deliberately excludes I/O from its application benchmarks
//! ("I/O would be overemphasized in the relatively short ... benchmark
//! runs", §6). Production runs of these codes *do* checkpoint through
//! Lustre, and the balance question — how often can you checkpoint before
//! I/O dominates? — is exactly the kind the paper's methodology supports.
//! This module answers it on the same simulated substrate.

use xtsim_des::{Sim, SimBarrier};
use xtsim_lustre::{Lustre, LustreConfig};
use xtsim_machine::{ExecMode, MachineSpec};

/// A checkpoint experiment: `ranks` writers each dumping `bytes_per_rank`.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Writer (rank) count.
    pub ranks: usize,
    /// State bytes each rank dumps.
    pub bytes_per_rank: u64,
    /// Stripe count of the checkpoint file(s).
    pub stripe_count: usize,
    /// One file per rank (`true`) or a single shared file.
    pub file_per_process: bool,
    /// Filesystem deployment.
    pub lustre: LustreConfig,
}

/// Result of one checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointResult {
    /// Wall seconds for all ranks to finish writing.
    pub write_secs: f64,
    /// Aggregate bandwidth achieved, GB/s.
    pub aggregate_gbs: f64,
    /// Metadata operations (the single-MDS pressure).
    pub mds_ops: u64,
}

/// Simulate one checkpoint.
pub fn checkpoint(seed: u64, cfg: &CheckpointConfig) -> CheckpointResult {
    let mut sim = Sim::new(seed);
    let fs = Lustre::new(sim.handle(), cfg.lustre.clone());
    let barrier = SimBarrier::new(cfg.ranks);
    let shared = std::rc::Rc::new(std::cell::RefCell::new(None::<u64>));
    for r in 0..cfg.ranks {
        let client = fs.register_client();
        let barrier = barrier.clone();
        let shared = std::rc::Rc::clone(&shared);
        let cfg = cfg.clone();
        sim.spawn(async move {
            let fh = if cfg.file_per_process {
                client.create(cfg.stripe_count).await
            } else if r == 0 {
                let fh = client.create(cfg.stripe_count).await;
                *shared.borrow_mut() = Some(fh.fid);
                barrier.wait().await;
                fh
            } else {
                barrier.wait().await;
                let fid = shared.borrow().expect("rank 0 created");
                client.open(fid).await.expect("shared file exists")
            };
            let base = if cfg.file_per_process {
                0
            } else {
                r as u64 * cfg.bytes_per_rank
            };
            client.write(fh, base, cfg.bytes_per_rank).await;
        });
    }
    let write_secs = sim.run().as_secs_f64();
    let total = cfg.ranks as u64 * cfg.bytes_per_rank;
    CheckpointResult {
        write_secs,
        aggregate_gbs: total as f64 / write_secs / 1e9,
        mds_ops: fs.stats().mds_ops,
    }
}

/// The balance question for a POP-style run: what fraction of wall time goes
/// to checkpointing if the model state is dumped every `interval_steps`
/// steps? Uses the simulated per-step time from the POP proxy and the
/// simulated checkpoint time from the Lustre model.
pub fn pop_checkpoint_overhead(
    machine: &MachineSpec,
    mode: ExecMode,
    tasks: usize,
    interval_steps: usize,
    lustre: LustreConfig,
) -> Option<f64> {
    let run = crate::pop::pop(machine, mode, tasks, crate::pop::Solver::StandardCg)?;
    let steps_per_day = 86_400.0 / crate::pop::DT_SECS;
    let step_secs =
        (run.baroclinic_secs_per_day + run.barotropic_secs_per_day) / steps_per_day;
    // State: 4 prognostic 3-D fields + 2-D fields, f64.
    let pts = (crate::pop::NX * crate::pop::NY * crate::pop::NZ) as u64;
    let state_bytes = pts * 8 * 4 / tasks as u64;
    // Scale the I/O subsystem the way sites do: ~1 OSS per 256 writers.
    let mut fs = lustre;
    fs.oss_count = fs.oss_count.max(tasks / 256);
    let ckpt = checkpoint(
        9,
        &CheckpointConfig {
            ranks: tasks.min(512), // representative writer subset…
            bytes_per_rank: state_bytes,
            stripe_count: 4,
            file_per_process: true,
            lustre: fs,
        },
    );
    // …scaled back to the full writer count (bandwidth-bound regime).
    let full_ckpt_secs = ckpt.write_secs * (tasks as f64 / tasks.min(512) as f64).max(1.0);
    let compute_secs = interval_steps as f64 * step_secs;
    Some(full_ckpt_secs / (full_ckpt_secs + compute_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    fn base(ranks: usize) -> CheckpointConfig {
        CheckpointConfig {
            ranks,
            bytes_per_rank: 16 << 20,
            stripe_count: 4,
            file_per_process: true,
            lustre: LustreConfig::default(),
        }
    }

    #[test]
    fn checkpoint_bandwidth_bounded_by_backend() {
        let cfg = base(64);
        let backend = cfg.lustre.oss_bw_gbs * cfg.lustre.oss_count as f64;
        let r = checkpoint(1, &cfg);
        assert!(r.aggregate_gbs > 0.3 * backend, "{r:?}");
        assert!(r.aggregate_gbs <= backend * 1.05, "{r:?}");
        assert_eq!(r.mds_ops, 64);
    }

    #[test]
    fn shared_file_narrow_stripe_is_slower() {
        let fpp = checkpoint(1, &base(32));
        let mut shared_cfg = base(32);
        shared_cfg.file_per_process = false;
        let shared = checkpoint(1, &shared_cfg);
        // One 4-OST file caps at 1.6 GB/s vs ~10 GB/s across many files.
        assert!(
            shared.aggregate_gbs < 0.5 * fpp.aggregate_gbs,
            "{shared:?} vs {fpp:?}"
        );
    }

    #[test]
    fn overhead_shrinks_with_longer_intervals() {
        let m = presets::xt4();
        let short = pop_checkpoint_overhead(&m, ExecMode::VN, 512, 10, LustreConfig::default())
            .unwrap();
        let long = pop_checkpoint_overhead(&m, ExecMode::VN, 512, 1000, LustreConfig::default())
            .unwrap();
        assert!(short > long, "{short} vs {long}");
        assert!(long < 0.05, "hourly-style checkpointing is cheap: {long}");
        assert!((0.0..=1.0).contains(&short));
    }
}
