#![forbid(unsafe_code)]
//! # xtsim-apps — petascale application proxies
//!
//! Proxy implementations of the five applications the paper benchmarks
//! (§6), each reproducing the phase structure and communication skeleton
//! the paper uses to explain its measurements:
//!
//! * [`cam`] — Community Atmosphere Model, FV dycore, D-grid (Figures 14–16);
//! * [`pop`] — Parallel Ocean Program, 0.1° benchmark (Figures 17–19);
//! * [`namd`] — NAMD biomolecular MD, 1M/3M-atom systems (Figures 20–21);
//! * [`s3d`] — S3D turbulent combustion DNS, weak scaling (Figure 22);
//! * [`aorsa`] — AORSA fusion full-wave solver, strong scaling (Figure 23);
//! * [`checkpoint`] — checkpoint I/O through the Lustre model (an extension:
//!   the paper excludes I/O from its application runs).

#![warn(missing_docs)]

pub mod aorsa;
pub mod cam;
pub mod checkpoint;
pub mod common;
pub mod namd;
pub mod pdes;
pub mod pop;
pub mod s3d;
