//! Work-packet models: operation counts and memory-traffic constants that
//! convert each kernel into a [`WorkPacket`] the simulator can price.
//!
//! The constants below are calibration choices documented in EXPERIMENTS.md.
//! They are chosen once, against the paper's published XT3 *single-core*
//! numbers, and then held fixed: the XT4 predictions (and all contention
//! behaviour) follow from the machine model, not from refitting.

use xtsim_machine::{MachineSpec, WorkPacket};

use crate::dgemm::dgemm_flops;
use crate::fft::fft_flops;
use crate::lu::hpl_flops;
use crate::stream::bytes_per_element;

/// Fraction of peak the scalar FFT inner loops sustain when not waiting on
/// memory (butterflies are latency-chained).
pub const FFT_FLOP_EFFICIENCY: f64 = 0.45;
/// Effective non-overlapped DRAM bytes per FFT point per butterfly stage
/// (`bytes = FFT_MEM_BYTES_PER_POINT · N · log2 N`). Calibrated so the XT3
/// SP FFT lands at the paper's ~0.5 GFLOPS.
pub const FFT_MEM_BYTES_PER_POINT: f64 = 40.0;

/// An N-point complex-to-complex FFT on one core.
pub fn fft_packet(n: usize) -> WorkPacket {
    let lg = (n.max(2) as f64).log2();
    WorkPacket {
        flops: fft_flops(n),
        flop_efficiency: FFT_FLOP_EFFICIENCY,
        serial_dram_bytes: FFT_MEM_BYTES_PER_POINT * n as f64 * lg,
        shared_dram_bytes: 0.0,
        random_refs: 0.0,
    }
}

/// An N×N DGEMM on one core; cache-blocked, so DRAM traffic is the matrix
/// footprint (streamed once per panel sweep), far below controller
/// saturation — which is why Figure 5 shows no EP-mode degradation.
pub fn dgemm_packet(n: usize, machine: &MachineSpec) -> WorkPacket {
    WorkPacket {
        flops: dgemm_flops(n),
        flop_efficiency: machine.processor.dgemm_efficiency,
        serial_dram_bytes: 0.0,
        shared_dram_bytes: 3.0 * 8.0 * (n * n) as f64,
        random_refs: 0.0,
    }
}

/// A STREAM-triad pass over `n` elements: pure shared-controller streaming.
pub fn stream_triad_packet(n: usize) -> WorkPacket {
    WorkPacket {
        flops: 2.0 * n as f64,
        flop_efficiency: 1.0,
        serial_dram_bytes: 0.0,
        shared_dram_bytes: bytes_per_element::TRIAD * n as f64,
        random_refs: 0.0,
    }
}

/// `updates` RandomAccess table updates: contends on the socket's GUPS
/// capacity (Figure 6's EP-mode halving).
pub fn random_access_packet(updates: u64) -> WorkPacket {
    WorkPacket {
        flops: 0.0,
        flop_efficiency: 1.0,
        serial_dram_bytes: 0.0,
        shared_dram_bytes: 0.0,
        random_refs: updates as f64,
    }
}

/// The compute share of one rank in an N×N distributed HPL solve
/// (factorization flops split evenly across `ranks`).
pub fn hpl_local_packet(n: usize, ranks: usize, machine: &MachineSpec) -> WorkPacket {
    WorkPacket {
        flops: hpl_flops(n) / ranks as f64,
        // HPL sustains slightly below DGEMM because of panel factorization.
        flop_efficiency: machine.processor.dgemm_efficiency * 0.92,
        serial_dram_bytes: 0.0,
        shared_dram_bytes: 8.0 * (n * n) as f64 / ranks as f64,
        random_refs: 0.0,
    }
}

/// One rank's local work in a distributed 1-D FFT of total size `n` over
/// `ranks` ranks (compute phases of the MPI-FFT benchmark; the transpose
/// traffic is communicated explicitly by the benchmark driver).
pub fn mpi_fft_local_packet(n: usize, ranks: usize) -> WorkPacket {
    let local = (n / ranks).max(2);
    let whole = fft_packet(n);
    WorkPacket {
        flops: whole.flops / ranks as f64,
        flop_efficiency: FFT_FLOP_EFFICIENCY,
        serial_dram_bytes: FFT_MEM_BYTES_PER_POINT * local as f64 * (local as f64).log2(),
        shared_dram_bytes: 0.0,
        random_refs: 0.0,
    }
}

/// One rank's local transpose work in PTRANS (streaming copy of its tile).
pub fn ptrans_local_packet(tile_elems: usize) -> WorkPacket {
    WorkPacket {
        flops: tile_elems as f64, // one add per element (A^T + A)
        flop_efficiency: 1.0,
        serial_dram_bytes: 0.0,
        shared_dram_bytes: 24.0 * tile_elems as f64, // read tile + incoming, write
        random_refs: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtsim_machine::presets;

    #[test]
    fn fft_packet_calibration_hits_paper_numbers() {
        // Paper Figure 4: XT3 SP ≈ 0.50 GFLOPS, XT4 SP ≈ 0.63 GFLOPS.
        let w = fft_packet(1 << 20);
        let xt3 = w.uncontended_gflops(&presets::xt3_single());
        let xt4 = w.uncontended_gflops(&presets::xt4());
        assert!((xt3 - 0.50).abs() < 0.06, "XT3 FFT {xt3}");
        assert!((xt4 - 0.63).abs() < 0.08, "XT4 FFT {xt4}");
        // The paper's headline: ~25% improvement, mostly from memory.
        let gain = xt4 / xt3;
        assert!(gain > 1.15 && gain < 1.45, "gain {gain}");
    }

    #[test]
    fn dgemm_packet_tracks_clock_and_efficiency() {
        // Paper Figure 5: XT3 ≈ 4.2, XT4 ≈ 4.5 GFLOPS (clock-driven).
        let xt3 = dgemm_packet(2000, &presets::xt3_single())
            .uncontended_gflops(&presets::xt3_single());
        let xt4 = dgemm_packet(2000, &presets::xt4()).uncontended_gflops(&presets::xt4());
        assert!((xt3 - 4.18).abs() < 0.15, "{xt3}");
        assert!((xt4 - 4.52).abs() < 0.15, "{xt4}");
    }

    #[test]
    fn stream_packet_is_bandwidth_bound() {
        // Paper Figure 7: XT3 ≈ 5.1 GB/s, XT4 ≈ 7.3 GB/s triad.
        let n = 8_000_000usize;
        let w = stream_triad_packet(n);
        for (m, expect) in [
            (presets::xt3_single(), 5.1),
            (presets::xt4(), 7.3),
        ] {
            let t = w.uncontended_time(&m);
            let gbs = bytes_per_element::TRIAD * n as f64 / t / 1e9;
            assert!((gbs - expect).abs() < 0.2, "{}: {gbs}", m.name);
        }
    }

    #[test]
    fn random_access_packet_hits_gups() {
        // Paper Figure 6: XT3 ≈ 0.014, XT4 ≈ 0.019 GUPS (SP mode).
        let updates = 4_000_000u64;
        let w = random_access_packet(updates);
        for (m, expect) in [
            (presets::xt3_single(), 0.014),
            (presets::xt4(), 0.019),
        ] {
            let t = w.uncontended_time(&m);
            let gups = updates as f64 / t / 1e9;
            assert!((gups - expect).abs() < 0.002, "{}: {gups}", m.name);
        }
    }

    #[test]
    fn hpl_slightly_below_dgemm() {
        let m = presets::xt4();
        let hpl = hpl_local_packet(10_000, 4, &m).uncontended_gflops(&m);
        let dg = dgemm_packet(2000, &m).uncontended_gflops(&m);
        assert!(hpl < dg && hpl > 0.8 * dg, "hpl {hpl} dgemm {dg}");
    }
}
