//! Complex LU factorization with partial pivoting — the AORSA full-wave
//! solver factors a dense *complex* system (§6.5: "HPL locally modified for
//! use with complex coefficients").

use crate::complex::C64;

/// Packed complex LU factors with pivoting, `P·A = L·U`.
pub struct ZluFactors {
    /// Matrix order.
    pub n: usize,
    /// Packed factors, row-major.
    pub lu: Vec<C64>,
    /// Pivot rows.
    pub piv: Vec<usize>,
}

/// Factor a complex matrix; `None` when exactly singular.
pub fn zlu_factor(n: usize, a: &[C64]) -> Option<ZluFactors> {
    assert!(a.len() >= n * n);
    let mut lu = a[..n * n].to_vec();
    let mut piv = vec![0usize; n];
    for k in 0..n {
        let mut p = k;
        let mut pmax = lu[k * n + k].norm_sqr();
        for i in k + 1..n {
            let v = lu[i * n + k].norm_sqr();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if pmax == 0.0 {
            return None;
        }
        piv[k] = p;
        if p != k {
            for j in 0..n {
                lu.swap(k * n + j, p * n + j);
            }
        }
        let pivot_inv = lu[k * n + k].recip();
        for i in k + 1..n {
            let m = lu[i * n + k] * pivot_inv;
            lu[i * n + k] = m;
            let (top, bottom) = lu.split_at_mut(i * n);
            let urow = &top[k * n + k + 1..k * n + n];
            let irow = &mut bottom[k + 1..n];
            for (iv, uv) in irow.iter_mut().zip(urow) {
                *iv -= m * *uv;
            }
        }
    }
    Some(ZluFactors { n, lu, piv })
}

impl ZluFactors {
    /// Solve `A x = b`.
    pub fn solve(&self, b: &[C64]) -> Vec<C64> {
        let n = self.n;
        let mut x = b[..n].to_vec();
        // All pivot swaps first (L is stored in final row order), then the
        // unit-lower forward substitution.
        for k in 0..n {
            x.swap(k, self.piv[k]);
        }
        for k in 0..n {
            let xk = x[k];
            for i in k + 1..n {
                let m = self.lu[i * n + k];
                x[i] -= m * xk;
            }
        }
        for k in (0..n).rev() {
            x[k] = x[k] * self.lu[k * n + k].recip();
            let xk = x[k];
            for i in 0..k {
                let m = self.lu[i * n + k];
                x[i] -= m * xk;
            }
        }
        x
    }
}

/// Infinity-norm relative residual `||Ax - b||_inf / ||b||_inf`.
pub fn zresidual(n: usize, a: &[C64], x: &[C64], b: &[C64]) -> f64 {
    let mut rmax: f64 = 0.0;
    let mut bmax: f64 = 0.0;
    for i in 0..n {
        let mut dot = C64::ZERO;
        for j in 0..n {
            dot += a[i * n + j] * x[j];
        }
        rmax = rmax.max((dot - b[i]).abs());
        bmax = bmax.max(b[i].abs());
    }
    rmax / bmax.max(f64::MIN_POSITIVE)
}

/// Flops credited to a complex LU solve: a complex multiply-add is 8 real
/// flops, so 4× the real-LU count.
pub fn zlu_flops(n: usize) -> f64 {
    let n = n as f64;
    8.0 / 3.0 * n * n * n + 8.0 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_system(n: usize, seed: u64) -> (Vec<C64>, Vec<C64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut gen = || C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let a: Vec<C64> = (0..n * n).map(|_| gen()).collect();
        let b: Vec<C64> = (0..n).map(|_| gen()).collect();
        (a, b)
    }

    #[test]
    fn solves_random_complex_systems() {
        for n in [1usize, 2, 5, 24, 80] {
            let (a, b) = random_system(n, 7 + n as u64);
            let f = zlu_factor(n, &a).expect("nonsingular w.h.p.");
            let x = f.solve(&b);
            let r = zresidual(n, &a, &x, &b);
            assert!(r < 1e-8, "n={n}: residual {r}");
        }
    }

    #[test]
    fn real_input_matches_real_lu() {
        use crate::lu::lu_factor;
        let n = 12;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        use rand::Rng;
        let ar: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let br: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ac: Vec<C64> = ar.iter().map(|&v| C64::new(v, 0.0)).collect();
        let bc: Vec<C64> = br.iter().map(|&v| C64::new(v, 0.0)).collect();
        let xr = lu_factor(n, &ar).unwrap().solve(&br);
        let xc = zlu_factor(n, &ac).unwrap().solve(&bc);
        for (r, c) in xr.iter().zip(&xc) {
            assert!((r - c.re).abs() < 1e-9);
            assert!(c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn singular_detected() {
        let a = vec![C64::ZERO; 4];
        assert!(zlu_factor(2, &a).is_none());
    }

    #[test]
    fn known_2x2_system() {
        // (1+i) x = 2  => x = 1 - i.
        let a = vec![C64::new(1.0, 1.0), C64::ZERO, C64::ZERO, C64::ONE];
        let b = vec![C64::new(2.0, 0.0), C64::new(3.0, 0.0)];
        let x = zlu_factor(2, &a).unwrap().solve(&b);
        assert!((x[0] - C64::new(1.0, -1.0)).abs() < 1e-12);
        assert!((x[1] - C64::new(3.0, 0.0)).abs() < 1e-12);
    }
}
