//! Dense LU factorization with partial pivoting (the computational heart of
//! HPL / Figure 8) and triangular solves.
//!
//! Right-looking blocked elimination on row-major storage. Also provides the
//! residual check the HPL harness reports.

/// LU factorization result: `P·A = L·U` stored packed in `lu` (unit lower
/// triangle implicit), with the pivot row permutation.
pub struct LuFactors {
    /// Matrix order.
    pub n: usize,
    /// Packed L\U factors, row-major.
    pub lu: Vec<f64>,
    /// `piv[k]` = row swapped into position `k` at step `k`.
    pub piv: Vec<usize>,
}

/// Factor a (copy of a) dense matrix. Returns `None` if exactly singular.
pub fn lu_factor(n: usize, a: &[f64]) -> Option<LuFactors> {
    assert!(a.len() >= n * n);
    let mut lu = a[..n * n].to_vec();
    let mut piv = vec![0usize; n];
    for k in 0..n {
        // Partial pivot: largest magnitude in column k at/below the diagonal.
        let mut p = k;
        let mut pmax = lu[k * n + k].abs();
        for i in k + 1..n {
            let v = lu[i * n + k].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if pmax == 0.0 {
            return None;
        }
        piv[k] = p;
        if p != k {
            for j in 0..n {
                lu.swap(k * n + j, p * n + j);
            }
        }
        let pivot = lu[k * n + k];
        for i in k + 1..n {
            let m = lu[i * n + k] / pivot;
            lu[i * n + k] = m;
            // Rank-1 update of the trailing row.
            let (top, bottom) = lu.split_at_mut(i * n);
            let urow = &top[k * n + k + 1..k * n + n];
            let irow = &mut bottom[k + 1..n];
            for (iv, uv) in irow.iter_mut().zip(urow) {
                *iv -= m * uv;
            }
        }
    }
    Some(LuFactors { n, lu, piv })
}

impl LuFactors {
    /// Solve `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert!(b.len() >= n);
        let mut x = b[..n].to_vec();
        // Apply the full row permutation first (L is stored in final row
        // order because each pivot swap moved whole rows), then forward
        // substitution with the unit lower triangle.
        for k in 0..n {
            x.swap(k, self.piv[k]);
        }
        for k in 0..n {
            let xk = x[k];
            for i in k + 1..n {
                x[i] -= self.lu[i * n + k] * xk;
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            x[k] /= self.lu[k * n + k];
            let xk = x[k];
            for i in 0..k {
                x[i] -= self.lu[i * n + k] * xk;
            }
        }
        x
    }
}

/// Scaled HPL residual `||Ax-b||_inf / (eps * ||A||_1 * n)`; the benchmark
/// passes when this is O(1).
pub fn hpl_residual(n: usize, a: &[f64], x: &[f64], b: &[f64]) -> f64 {
    let mut rmax: f64 = 0.0;
    for i in 0..n {
        let mut dot = 0.0;
        for j in 0..n {
            dot += a[i * n + j] * x[j];
        }
        rmax = rmax.max((dot - b[i]).abs());
    }
    let norm_a = (0..n)
        .map(|j| (0..n).map(|i| a[i * n + j].abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    rmax / (f64::EPSILON * norm_a * n as f64)
}

/// Flops credited to an N×N LU factorization + solve (the HPL accounting).
pub fn hpl_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 2.0 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_system(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (a, b)
    }

    #[test]
    fn solves_random_systems() {
        for n in [1usize, 2, 3, 10, 50, 120] {
            let (a, b) = random_system(n, n as u64);
            let f = lu_factor(n, &a).expect("nonsingular w.h.p.");
            let x = f.solve(&b);
            let r = hpl_residual(n, &a, &x, &b);
            assert!(r < 16.0, "n={n}: scaled residual {r}");
        }
    }

    #[test]
    fn identity_factorization() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let f = lu_factor(n, &a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(f.solve(&b), b);
    }

    #[test]
    fn singular_matrix_detected() {
        let n = 3;
        // Two identical rows.
        let a = vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 0.0, 1.0, 1.0];
        assert!(lu_factor(n, &a).is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // A = [[0,1],[1,0]] needs a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let f = lu_factor(2, &a).unwrap();
        let x = f.solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hpl_flops_formula() {
        let f = hpl_flops(1000);
        assert!((f - (2.0 / 3.0 * 1.0e9 + 2.0e6)).abs() < 1.0);
    }
}

/// Blocked right-looking LU with partial pivoting — the actual structure of
/// HPL's factorization (panel factorization + triangular solve + trailing
/// GEMM update), with block size `nb`. Produces the same factors as
/// [`lu_factor`] up to round-off.
pub fn lu_factor_blocked(n: usize, a: &[f64], nb: usize) -> Option<LuFactors> {
    assert!(nb >= 1);
    let mut lu = a[..n * n].to_vec();
    let mut piv = vec![0usize; n];
    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        // --- panel factorization (unblocked, on columns k0..k0+kb) ---
        for k in k0..k0 + kb {
            let mut p = k;
            let mut pmax = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return None;
            }
            piv[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            let pivot = lu[k * n + k];
            for i in k + 1..n {
                let m = lu[i * n + k] / pivot;
                lu[i * n + k] = m;
                // Update only within the panel; the trailing matrix is
                // updated by the blocked GEMM below.
                let (top, bottom) = lu.split_at_mut(i * n);
                let urow = &top[k * n + k + 1..k * n + k0 + kb];
                let irow = &mut bottom[k + 1..k0 + kb];
                for (iv, uv) in irow.iter_mut().zip(urow) {
                    *iv -= m * uv;
                }
            }
        }
        let rest = k0 + kb;
        if rest < n {
            // --- triangular solve: U12 = L11^{-1} A12 ---
            for k in k0..rest {
                for i in k + 1..rest {
                    let m = lu[i * n + k];
                    let (top, bottom) = lu.split_at_mut(i * n);
                    let urow = &top[k * n + rest..k * n + n];
                    let irow = &mut bottom[rest..n];
                    for (iv, uv) in irow.iter_mut().zip(urow) {
                        *iv -= m * uv;
                    }
                }
            }
            // --- trailing update: A22 -= L21 * U12 (the GEMM that HPL
            //     spends its time in) ---
            for i in rest..n {
                for k in k0..rest {
                    let m = lu[i * n + k];
                    if m != 0.0 {
                        let (top, bottom) = lu.split_at_mut(i * n);
                        let urow = &top[k * n + rest..k * n + n];
                        let irow = &mut bottom[rest..n];
                        for (iv, uv) in irow.iter_mut().zip(urow) {
                            *iv -= m * uv;
                        }
                    }
                }
            }
        }
        k0 += kb;
    }
    Some(LuFactors { n, lu, piv })
}

#[cfg(test)]
mod blocked_tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_system(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (a, b)
    }

    #[test]
    fn blocked_matches_unblocked_factors() {
        for (n, nb) in [(16usize, 4usize), (33, 8), (50, 7), (64, 64), (20, 1)] {
            let (a, _) = random_system(n, n as u64 + nb as u64);
            let f1 = lu_factor(n, &a).unwrap();
            let f2 = lu_factor_blocked(n, &a, nb).unwrap();
            assert_eq!(f1.piv, f2.piv, "n={n} nb={nb}");
            for (x, y) in f1.lu.iter().zip(&f2.lu) {
                assert!((x - y).abs() < 1e-9, "n={n} nb={nb}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn blocked_solves_systems() {
        for n in [8usize, 40, 100] {
            let (a, b) = random_system(n, 3 * n as u64);
            let f = lu_factor_blocked(n, &a, 16).unwrap();
            let x = f.solve(&b);
            assert!(hpl_residual(n, &a, &x, &b) < 16.0, "n={n}");
        }
    }

    #[test]
    fn blocked_detects_singularity() {
        let a = vec![0.0; 9];
        assert!(lu_factor_blocked(3, &a, 2).is_none());
    }

    #[test]
    fn block_size_larger_than_matrix_is_fine() {
        let (a, b) = random_system(10, 77);
        let f = lu_factor_blocked(10, &a, 64).unwrap();
        let x = f.solve(&b);
        assert!(hpl_residual(10, &a, &x, &b) < 16.0);
    }
}
