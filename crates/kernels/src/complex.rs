//! Minimal complex arithmetic (the AORSA solver is a dense *complex* linear
//! system; we avoid an external num crate).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> C64 {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> C64 {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn recip(self) -> C64 {
        let d = self.norm_sqr();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> C64 {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}
impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}
impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}
impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}
impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}
impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^{-1} by definition
    fn div(self, o: C64) -> C64 {
        self * o.recip()
    }
}
impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = C64::new(1.5, -2.0);
        let b = C64::new(-0.5, 3.0);
        assert_eq!(a + b, C64::new(1.0, 1.0));
        assert_eq!(a - b, C64::new(2.0, -5.0));
        // (1.5 - 2i)(-0.5 + 3i) = -0.75 + 4.5i + 1i + 6 = 5.25 + 5.5i
        let p = a * b;
        assert!((p.re - 5.25).abs() < 1e-12);
        assert!((p.im - 5.5).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(3.0, 4.0);
        let b = C64::new(-1.0, 2.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..8 {
            let t = k as f64 * std::f64::consts::FRAC_PI_4;
            assert!((C64::cis(t).abs() - 1.0).abs() < 1e-12);
        }
        assert!((C64::cis(std::f64::consts::PI) - C64::new(-1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norms() {
        let a = C64::new(3.0, -4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.conj(), C64::new(3.0, 4.0));
        let r = a * a.recip();
        assert!((r - C64::ONE).abs() < 1e-12);
    }
}
