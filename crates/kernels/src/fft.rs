//! Radix-2 Cooley–Tukey FFT (the HPCC FFT kernel and the PME grid solve in
//! the NAMD proxy).
//!
//! Iterative, in-place, with bit-reversal permutation. Power-of-two lengths
//! only — the benchmark drivers pick power-of-two problem sizes exactly as
//! the HPCC harness does.

use crate::complex::C64;

/// In-place forward FFT. Panics unless `data.len()` is a power of two.
pub fn fft(data: &mut [C64]) {
    transform(data, -1.0);
}

/// In-place inverse FFT (including the 1/N normalization).
pub fn ifft(data: &mut [C64]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(1.0 / n);
    }
}

fn transform(data: &mut [C64], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::cis(ang);
        for chunk in data.chunks_exact_mut(len) {
            let mut w = C64::ONE;
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

fn bit_reverse_permute(data: &mut [C64]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Naive O(N²) DFT used as the test oracle.
pub fn dft_reference(data: &[C64]) -> Vec<C64> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += x * C64::cis(ang);
            }
            acc
        })
        .collect()
}

/// Flop count the HPCC harness credits an N-point complex FFT with.
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let signal = random_signal(n, 42);
            let expect = dft_reference(&signal);
            let mut got = signal.clone();
            fft(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!((*g - *e).abs() < 1e-9 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let signal = random_signal(256, 7);
        let mut data = signal.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&signal) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut data = vec![C64::ZERO; 16];
        data[0] = C64::ONE;
        fft(&mut data);
        for x in &data {
            assert!((*x - C64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_gives_delta() {
        let mut data = vec![C64::ONE; 16];
        fft(&mut data);
        assert!((data[0] - C64::new(16.0, 0.0)).abs() < 1e-12);
        for x in &data[1..] {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal = random_signal(512, 3);
        let time_energy: f64 = signal.iter().map(|x| x.norm_sqr()).sum();
        let mut freq = signal;
        fft(&mut freq);
        let freq_energy: f64 = freq.iter().map(|x| x.norm_sqr()).sum::<f64>() / 512.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![C64::ZERO; 12];
        fft(&mut data);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(fft_flops(1024), 5.0 * 1024.0 * 10.0);
    }
}
