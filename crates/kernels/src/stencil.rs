//! High-order finite-difference kernels — the computational core of the S3D
//! proxy (§6.4): eighth-order first derivatives (9-point stencils) and a
//! tenth-order low-pass filter (11-point stencil), on 3-D blocks with ghost
//! zones, advanced by an explicit Runge–Kutta integrator.

/// Eighth-order central first-derivative coefficients (offsets 1..=4).
pub const D8_COEFFS: [f64; 4] = [4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0];

/// Ghost-cell width needed by the widest stencil (the 11-point filter).
pub const GHOST: usize = 5;

/// A 3-D scalar field with ghost shells on every face.
#[derive(Debug, Clone)]
pub struct Grid3 {
    /// Interior points per dimension.
    pub nx: usize,
    /// Interior points in y.
    pub ny: usize,
    /// Interior points in z.
    pub nz: usize,
    data: Vec<f64>,
}

impl Grid3 {
    /// Allocate a zeroed field.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Grid3 {
        let total = (nx + 2 * GHOST) * (ny + 2 * GHOST) * (nz + 2 * GHOST);
        Grid3 {
            nx,
            ny,
            nz,
            data: vec![0.0; total],
        }
    }

    #[inline]
    fn stride_y(&self) -> usize {
        self.nx + 2 * GHOST
    }
    #[inline]
    fn stride_z(&self) -> usize {
        (self.nx + 2 * GHOST) * (self.ny + 2 * GHOST)
    }

    /// Linear index of interior coordinate `(i, j, k)`; interior indices are
    /// `0..n`, ghosts live at `-GHOST..0` and `n..n+GHOST` (pass offsets via
    /// `isize`).
    #[inline]
    pub fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        let ii = (i + GHOST as isize) as usize;
        let jj = (j + GHOST as isize) as usize;
        let kk = (k + GHOST as isize) as usize;
        ii + jj * self.stride_y() + kk * self.stride_z()
    }

    /// Read interior/ghost value.
    #[inline]
    pub fn get(&self, i: isize, j: isize, k: isize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Write interior/ghost value.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: isize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Fill the field from a function of interior coordinates.
    pub fn fill(&mut self, f: impl Fn(usize, usize, usize) -> f64) {
        for k in 0..self.nz {
            for j in 0..self.ny {
                for i in 0..self.nx {
                    self.set(i as isize, j as isize, k as isize, f(i, j, k));
                }
            }
        }
    }

    /// Periodic ghost exchange with *itself* (single-block test path; the
    /// parallel S3D proxy exchanges ghosts via MPI instead).
    pub fn fill_ghosts_periodic(&mut self) {
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        for k in -(GHOST as isize)..nz + GHOST as isize {
            for j in -(GHOST as isize)..ny + GHOST as isize {
                for i in -(GHOST as isize)..nx + GHOST as isize {
                    let inside = (0..nx).contains(&i) && (0..ny).contains(&j) && (0..nz).contains(&k);
                    if !inside {
                        let v = self.get(i.rem_euclid(nx), j.rem_euclid(ny), k.rem_euclid(nz));
                        self.set(i, j, k, v);
                    }
                }
            }
        }
    }

    /// Eighth-order ∂/∂x into `out` (interior only), grid spacing `h`.
    pub fn ddx(&self, h: f64, out: &mut Grid3) {
        self.derivative(h, out, |g, i, j, k, off| g.get(i + off, j, k));
    }

    /// Eighth-order ∂/∂y.
    pub fn ddy(&self, h: f64, out: &mut Grid3) {
        self.derivative(h, out, |g, i, j, k, off| g.get(i, j + off, k));
    }

    /// Eighth-order ∂/∂z.
    pub fn ddz(&self, h: f64, out: &mut Grid3) {
        self.derivative(h, out, |g, i, j, k, off| g.get(i, j, k + off));
    }

    fn derivative(
        &self,
        h: f64,
        out: &mut Grid3,
        at: impl Fn(&Grid3, isize, isize, isize, isize) -> f64,
    ) {
        let inv_h = 1.0 / h;
        for k in 0..self.nz as isize {
            for j in 0..self.ny as isize {
                for i in 0..self.nx as isize {
                    let mut acc = 0.0;
                    for (m, c) in D8_COEFFS.iter().enumerate() {
                        let off = (m + 1) as isize;
                        acc += c * (at(self, i, j, k, off) - at(self, i, j, k, -off));
                    }
                    out.set(i, j, k, acc * inv_h);
                }
            }
        }
    }

    /// Tenth-order low-pass filter along x (damps the odd–even mode the
    /// non-dissipative scheme cannot see), writing into `out`.
    pub fn filter_x(&self, out: &mut Grid3) {
        // f̃ = f + Δ¹⁰f/2¹⁰ with alternating binomial weights: exactly
        // annihilates the odd–even (Nyquist) mode, O(h¹⁰) on smooth fields.
        const BIN: [f64; 11] = [
            1.0, -10.0, 45.0, -120.0, 210.0, -252.0, 210.0, -120.0, 45.0, -10.0, 1.0,
        ];
        let scale = 1.0 / 1024.0;
        for k in 0..self.nz as isize {
            for j in 0..self.ny as isize {
                for i in 0..self.nx as isize {
                    let mut acc = 0.0;
                    for (m, c) in BIN.iter().enumerate() {
                        acc += c * self.get(i + m as isize - 5, j, k);
                    }
                    out.set(i, j, k, self.get(i, j, k) + scale * acc);
                }
            }
        }
    }

    /// Interior values flattened (x-fastest), for comparisons.
    pub fn interior(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.nx * self.ny * self.nz);
        for k in 0..self.nz {
            for j in 0..self.ny {
                for i in 0..self.nx {
                    v.push(self.get(i as isize, j as isize, k as isize));
                }
            }
        }
        v
    }
}

/// One 6-stage Runge–Kutta advection step `∂u/∂t = -c ∂u/∂x` on a periodic
/// block (the time-integration pattern of S3D, reduced to one equation).
/// Returns the new field.
pub fn rk_advect_step(u: &Grid3, c: f64, h: f64, dt: f64) -> Grid3 {
    // Low-storage RK: u_{s} = u + a_s * dt * F(u_{s-1}); final stage a=1.
    // Classical 6-stage coefficients for a 4th-order low-storage scheme.
    const A: [f64; 6] = [
        1.0 / 6.0,
        1.0 / 5.0,
        1.0 / 4.0,
        1.0 / 3.0,
        1.0 / 2.0,
        1.0,
    ];
    let mut stage = u.clone();
    let mut deriv = Grid3::new(u.nx, u.ny, u.nz);
    let mut out = u.clone();
    for a in A {
        stage.fill_ghosts_periodic();
        stage.ddx(h, &mut deriv);
        for k in 0..u.nz as isize {
            for j in 0..u.ny as isize {
                for i in 0..u.nx as isize {
                    let v = u.get(i, j, k) - a * dt * c * deriv.get(i, j, k);
                    out.set(i, j, k, v);
                }
            }
        }
        std::mem::swap(&mut stage, &mut out);
    }
    stage
}

/// Per-grid-point flop estimate for one S3D-like RK step with `nvars`
/// coupled variables (derivatives in 3 directions + filter + pointwise
/// chemistry-ish work).
pub fn s3d_flops_per_point(nvars: f64, chem_flops: f64) -> f64 {
    let stages = 6.0;
    let deriv = 3.0 * (4.0 * 3.0); // 3 dirs × (4 coeff × (sub+mul+add))
    let filter = 11.0 * 2.0;
    stages * nvars * (deriv + filter + chem_flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn sine_grid(n: usize, waves: f64) -> (Grid3, f64) {
        let mut g = Grid3::new(n, 4, 4);
        let h = 1.0 / n as f64;
        g.fill(|i, _, _| (TAU * waves * i as f64 * h).sin());
        g.fill_ghosts_periodic();
        (g, h)
    }

    fn max_deriv_error(n: usize) -> f64 {
        let (g, h) = sine_grid(n, 2.0);
        let mut d = Grid3::new(g.nx, g.ny, g.nz);
        g.ddx(h, &mut d);
        let mut err: f64 = 0.0;
        for i in 0..n {
            let x = i as f64 * h;
            let exact = TAU * 2.0 * (TAU * 2.0 * x).cos();
            err = err.max((d.get(i as isize, 0, 0) - exact).abs());
        }
        err
    }

    #[test]
    fn derivative_is_eighth_order() {
        let e1 = max_deriv_error(16);
        let e2 = max_deriv_error(32);
        let order = (e1 / e2).log2();
        assert!(order > 7.0, "observed order {order} ({e1} -> {e2})");
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        let mut g = Grid3::new(8, 8, 8);
        g.fill(|_, _, _| 3.5);
        g.fill_ghosts_periodic();
        let mut d = Grid3::new(8, 8, 8);
        g.ddx(1.0, &mut d);
        g.ddy(1.0, &mut d);
        g.ddz(1.0, &mut d);
        assert!(d.interior().iter().all(|v| v.abs() < 1e-13));
    }

    #[test]
    fn filter_preserves_smooth_removes_nyquist() {
        let n = 32;
        // Smooth component survives, odd-even (Nyquist) mode is annihilated.
        let mut g = Grid3::new(n, 4, 4);
        let h = 1.0 / n as f64;
        g.fill(|i, _, _| (TAU * i as f64 * h).sin() + if i % 2 == 0 { 0.5 } else { -0.5 });
        g.fill_ghosts_periodic();
        let mut f = Grid3::new(n, 4, 4);
        g.filter_x(&mut f);
        for i in 0..n {
            let smooth = (TAU * i as f64 * h).sin();
            let v = f.get(i as isize, 0, 0);
            assert!((v - smooth).abs() < 2e-2, "i={i}: {v} vs {smooth}");
        }
    }

    #[test]
    fn rk_advection_translates_wave() {
        let n = 64;
        let h = 1.0 / n as f64;
        let mut u = Grid3::new(n, 4, 4);
        u.fill(|i, _, _| (TAU * i as f64 * h).sin());
        let c = 1.0;
        let dt = 0.2 * h;
        let steps = 50;
        let mut cur = u;
        for _ in 0..steps {
            cur = rk_advect_step(&cur, c, h, dt);
        }
        let shift = c * dt * steps as f64;
        let mut err: f64 = 0.0;
        for i in 0..n {
            let x = i as f64 * h;
            let exact = (TAU * (x - shift)).sin();
            err = err.max((cur.get(i as isize, 0, 0) - exact).abs());
        }
        assert!(err < 1e-3, "advection error {err}");
    }

    #[test]
    fn ghost_fill_is_periodic() {
        let mut g = Grid3::new(6, 6, 6);
        g.fill(|i, j, k| (i * 100 + j * 10 + k) as f64);
        g.fill_ghosts_periodic();
        assert_eq!(g.get(-1, 0, 0), g.get(5, 0, 0));
        assert_eq!(g.get(6, 2, 3), g.get(0, 2, 3));
        assert_eq!(g.get(0, -2, 0), g.get(0, 4, 0));
        assert_eq!(g.get(1, 2, 8), g.get(1, 2, 2));
    }
}
