#![forbid(unsafe_code)]
//! # xtsim-kernels — real, executing HPC kernels
//!
//! Honest Rust implementations of the numerical kernels the paper's
//! benchmarks and applications are built from: DGEMM, radix-2 FFT, STREAM,
//! HPCC RandomAccess, dense LU (real and complex), conjugate gradient (plus
//! the Chronopoulos–Gear single-reduction variant POP 2.1 adopted),
//! eighth-order finite-difference stencils with Runge–Kutta integration, and
//! cell-list molecular dynamics.
//!
//! Every kernel serves two roles:
//!
//! 1. it **runs for real** — unit/property-tested here, wall-clock
//!    benchmarked by the Criterion harness in `xtsim-bench`;
//! 2. it **prices itself** for the simulator via [`workmodel`], which turns
//!    problem sizes into [`xtsim_machine::WorkPacket`] operation counts.

#![warn(missing_docs)]
// Dense numerical kernels index with explicit loop variables on purpose:
// the subscripts mirror the textbook algorithms they implement.
#![allow(clippy::needless_range_loop)]

pub mod cg;
pub mod complex;
pub mod dgemm;
pub mod fft;
pub mod lu;
pub mod md;
pub mod ptrans;
pub mod random_access;
pub mod stencil;
pub mod stream;
pub mod workmodel;
pub mod zlu;

pub use complex::C64;
