//! Conjugate-gradient solvers for sparse SPD systems — the barotropic solve
//! of POP (§6.2). Two variants:
//!
//! * [`cg`] — textbook CG: **two** inner products (hence two
//!   `MPI_Allreduce`s) per iteration;
//! * [`cg_chronopoulos_gear`] — the s-step rearrangement of Chronopoulos &
//!   Gear used by POP 2.1, which fuses the inner products so each iteration
//!   needs **one** reduction. The paper's Figures 18–19 show the resulting
//!   speedup at scale.
//!
//! Both return the iteration count and the number of inner-product
//! reductions performed, which the POP proxy feeds to the simulator.

/// Compressed sparse row matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Rows (= columns; matrices here are square).
    pub n: usize,
    /// Row start offsets, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub col_idx: Vec<usize>,
    /// Nonzero values.
    pub values: Vec<f64>,
}

impl Csr {
    /// `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for i in 0..self.n {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// 5-point Laplacian (Dirichlet) on an `nx × ny` grid — the implicit
/// barotropic operator on a POP-like 2-D grid.
pub fn laplacian_2d(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for j in 0..ny {
        for i in 0..nx {
            let row = j * nx + i;
            let mut push = |c: usize, v: f64| {
                col_idx.push(c);
                values.push(v);
            };
            if j > 0 {
                push(row - nx, -1.0);
            }
            if i > 0 {
                push(row - 1, -1.0);
            }
            push(row, 4.0);
            if i + 1 < nx {
                push(row + 1, -1.0);
            }
            if j + 1 < ny {
                push(row + nx, -1.0);
            }
            row_ptr.push(col_idx.len());
        }
    }
    Csr {
        n,
        row_ptr,
        col_idx,
        values,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Inner-product reductions performed (2/iter for CG, 1/iter for C-G).
    pub reductions: usize,
    /// Final residual norm `||b - Ax||_2`.
    pub residual: f64,
    /// Converged within the iteration budget.
    pub converged: bool,
}

/// Textbook conjugate gradient with diagonal preconditioning disabled
/// (POP's operator is well-scaled); two reductions per iteration.
pub fn cg(a: &Csr, b: &[f64], tol: f64, max_iter: usize) -> CgResult {
    let n = a.n;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r);
    let mut reductions = 1; // initial ||r||
    let tol2 = tol * tol * dot(b, b).max(f64::MIN_POSITIVE);
    let mut iterations = 0;
    while iterations < max_iter && rr > tol2 {
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap); // reduction 1
        let alpha = rr / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r); // reduction 2
        reductions += 2;
        let beta = rr_new / rr;
        rr = rr_new;
        for (pv, rv) in p.iter_mut().zip(&r) {
            *pv = rv + beta * *pv;
        }
        iterations += 1;
    }
    CgResult {
        residual: rr.sqrt(),
        converged: rr <= tol2,
        x,
        iterations,
        reductions,
    }
}

/// Chronopoulos–Gear CG: algebraically identical recurrence, but the two
/// inner products of each iteration are computed together on the *same*
/// vectors, so a parallel implementation fuses them into one reduction.
pub fn cg_chronopoulos_gear(a: &Csr, b: &[f64], tol: f64, max_iter: usize) -> CgResult {
    let n = a.n;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut w = vec![0.0; n];
    a.spmv(&r, &mut w);
    // Fused: (r·r) and (w·r) in one pass = one reduction.
    let mut rho = dot(&r, &r);
    let mut mu = dot(&w, &r);
    let mut reductions = 1;
    let tol2 = tol * tol * dot(b, b).max(f64::MIN_POSITIVE);
    let mut alpha = rho / mu;
    let mut p = r.clone();
    let mut s = w.clone();
    let mut iterations = 0;
    while iterations < max_iter && rho > tol2 {
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &s, &mut r);
        a.spmv(&r, &mut w);
        let rho_new = dot(&r, &r);
        let mu_new = dot(&w, &r);
        reductions += 1; // the two dots above fuse into one allreduce
        let beta = rho_new / rho;
        rho = rho_new;
        mu = mu_new;
        for (pv, rv) in p.iter_mut().zip(&r) {
            *pv = rv + beta * *pv;
        }
        for (sv, wv) in s.iter_mut().zip(&w) {
            *sv = wv + beta * *sv;
        }
        let denom = mu - beta / alpha * rho;
        alpha = rho / denom;
        iterations += 1;
    }
    CgResult {
        residual: rho.sqrt(),
        converged: rho <= tol2,
        x,
        iterations,
        reductions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn residual_norm(a: &Csr, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; a.n];
        a.spmv(x, &mut ax);
        ax.iter()
            .zip(b)
            .map(|(av, bv)| (av - bv) * (av - bv))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn laplacian_structure() {
        let a = laplacian_2d(4, 3);
        assert_eq!(a.n, 12);
        // Interior point has 5 nonzeros; corner has 3.
        assert_eq!(a.row_ptr[1] - a.row_ptr[0], 3);
        let interior = 4 + 1;
        assert_eq!(a.row_ptr[interior + 1] - a.row_ptr[interior], 5);
    }

    #[test]
    fn cg_converges_on_laplacian() {
        let a = laplacian_2d(20, 20);
        let b = rhs(a.n, 1);
        let out = cg(&a, &b, 1e-10, 2000);
        assert!(out.converged, "iters {}", out.iterations);
        assert!(residual_norm(&a, &out.x, &b) < 1e-8);
        assert_eq!(out.reductions, 2 * out.iterations + 1);
    }

    #[test]
    fn chronopoulos_gear_matches_cg_solution() {
        let a = laplacian_2d(16, 24);
        let b = rhs(a.n, 2);
        let std = cg(&a, &b, 1e-12, 4000);
        let cgv = cg_chronopoulos_gear(&a, &b, 1e-12, 4000);
        assert!(std.converged && cgv.converged);
        for (x, y) in std.x.iter().zip(&cgv.x) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
        // Similar iteration counts, half the reductions per iteration.
        let ratio = cgv.iterations as f64 / std.iterations as f64;
        assert!(ratio > 0.8 && ratio < 1.25, "{ratio}");
        assert_eq!(cgv.reductions, cgv.iterations + 1);
    }

    #[test]
    fn solves_diagonal_system_exactly() {
        let n = 8;
        let a = Csr {
            n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: (1..=n).map(|v| v as f64).collect(),
        };
        let b: Vec<f64> = (1..=n).map(|v| (v * v) as f64).collect();
        let out = cg(&a, &b, 1e-14, 100);
        for (i, x) in out.x.iter().enumerate() {
            assert!((x - (i + 1) as f64).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_2d(5, 5);
        let out = cg(&a, &vec![0.0; a.n], 1e-10, 10);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
    }
}
