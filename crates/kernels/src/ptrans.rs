//! Matrix transpose kernels (HPCC PTRANS measures `A = A^T + A` across the
//! machine; these are the node-local building blocks).

/// Out-of-place transpose, cache-blocked, row-major `rows × cols` input.
pub fn transpose(rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
    const BLOCK: usize = 32;
    assert!(a.len() >= rows * cols && out.len() >= rows * cols);
    let mut i0 = 0;
    while i0 < rows {
        let ib = BLOCK.min(rows - i0);
        let mut j0 = 0;
        while j0 < cols {
            let jb = BLOCK.min(cols - j0);
            for i in i0..i0 + ib {
                for j in j0..j0 + jb {
                    out[j * rows + i] = a[i * cols + j];
                }
            }
            j0 += BLOCK;
        }
        i0 += BLOCK;
    }
}

/// The PTRANS update `A = A^T + A` for a square matrix, returning a new
/// matrix (the distributed benchmark does this on 2-D block-cyclic tiles).
pub fn ptrans_update(n: usize, a: &[f64]) -> Vec<f64> {
    let mut t = vec![0.0; n * n];
    transpose(n, n, a, &mut t);
    for (tv, av) in t.iter_mut().zip(a) {
        *tv += av;
    }
    t
}

/// Bytes moved per element by the distributed PTRANS exchange (read + write
/// of one f64 across the network per matrix element not on the diagonal
/// blocks).
pub const PTRANS_BYTES_PER_ELEMENT: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, m: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n * m).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn transpose_is_involution() {
        for (r, c) in [(1, 1), (5, 7), (32, 32), (33, 65)] {
            let a = random(r, c, 1);
            let mut t = vec![0.0; r * c];
            let mut back = vec![0.0; r * c];
            transpose(r, c, &a, &mut t);
            transpose(c, r, &t, &mut back);
            assert_eq!(a, back, "{r}x{c}");
        }
    }

    #[test]
    fn transpose_moves_elements() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let mut t = vec![0.0; 6];
        transpose(2, 3, &a, &mut t);
        assert_eq!(t, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn ptrans_update_is_symmetric() {
        let n = 17;
        let a = random(n, n, 2);
        let s = ptrans_update(n, &a);
        for i in 0..n {
            for j in 0..n {
                assert!((s[i * n + j] - s[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
