//! Dense double-precision matrix multiply (the HPCC DGEMM kernel, the
//! update step of HPL, and the ScaLAPACK-style solver in the AORSA proxy).
//!
//! Row-major storage. The blocked kernel tiles for cache; with the
//! `parallel` feature the outer block loop fans out over Rayon.

/// `C += A * B` — naive triple loop (test oracle and small-problem path).
pub fn dgemm_naive(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let brow = &b[k * n..k * n + n];
            let crow = &mut c[i * n..i * n + n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

/// Cache-blocked `C += A * B` for square row-major matrices.
pub fn dgemm(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const BLOCK: usize = 64;
    assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        // Parallelize over row blocks; each block of C is owned by one task.
        c.par_chunks_mut(BLOCK * n)
            .enumerate()
            .for_each(|(bi, cchunk)| {
                let i0 = bi * BLOCK;
                let rows = cchunk.len() / n;
                block_panel(n, i0, rows, a, b, cchunk);
            });
        return;
    }
    #[cfg(not(feature = "parallel"))]
    {
        let mut i0 = 0;
        while i0 < n {
            let rows = BLOCK.min(n - i0);
            let cchunk = &mut c[i0 * n..(i0 + rows) * n];
            block_panel(n, i0, rows, a, b, cchunk);
            i0 += BLOCK;
        }
    }
}

/// Update `rows` rows of C starting at global row `i0`.
fn block_panel(n: usize, i0: usize, rows: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const BLOCK: usize = 64;
    let mut k0 = 0;
    while k0 < n {
        let kb = BLOCK.min(n - k0);
        let mut j0 = 0;
        while j0 < n {
            let jb = BLOCK.min(n - j0);
            for i in 0..rows {
                let arow = &a[(i0 + i) * n + k0..(i0 + i) * n + k0 + kb];
                for (dk, &aik) in arow.iter().enumerate() {
                    let k = k0 + dk;
                    let brow = &b[k * n + j0..k * n + j0 + jb];
                    let crow = &mut c[i * n + j0..i * n + j0 + jb];
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
            j0 += BLOCK;
        }
        k0 += BLOCK;
    }
}

/// Flops credited to an N×N matrix multiply.
pub fn dgemm_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn blocked_matches_naive() {
        for n in [1usize, 2, 17, 64, 65, 130] {
            let a = random_matrix(n, 1);
            let b = random_matrix(n, 2);
            let mut c1 = vec![0.0; n * n];
            let mut c2 = vec![0.0; n * n];
            dgemm_naive(n, &a, &b, &mut c1);
            dgemm(n, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let n = 33;
        let a = random_matrix(n, 3);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        dgemm(n, &a, &eye, &mut c);
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulates_into_c() {
        let n = 8;
        let a = random_matrix(n, 4);
        let b = random_matrix(n, 5);
        let mut c = vec![1.0; n * n];
        let mut expect = vec![1.0; n * n];
        dgemm(n, &a, &b, &mut c);
        dgemm_naive(n, &a, &b, &mut expect);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn flops_formula() {
        assert_eq!(dgemm_flops(100), 2.0e6);
    }
}
