//! The STREAM memory-bandwidth kernels (McCalpin): Copy, Scale, Add, Triad.
//!
//! These run for real in the Criterion benches (host bandwidth) and define
//! the byte-traffic accounting used by the simulator's STREAM benchmark.

/// `c[i] = a[i]` — 16 bytes/element of traffic.
pub fn copy(a: &[f64], c: &mut [f64]) {
    c.copy_from_slice(a);
}

/// `b[i] = s * c[i]` — 16 bytes/element.
pub fn scale(s: f64, c: &[f64], b: &mut [f64]) {
    for (bv, cv) in b.iter_mut().zip(c) {
        *bv = s * cv;
    }
}

/// `c[i] = a[i] + b[i]` — 24 bytes/element.
pub fn add(a: &[f64], b: &[f64], c: &mut [f64]) {
    for ((cv, av), bv) in c.iter_mut().zip(a).zip(b) {
        *cv = av + bv;
    }
}

/// `a[i] = b[i] + s * c[i]` — 24 bytes/element, 2 flops/element. The
/// headline STREAM number (the paper's Figure 7).
pub fn triad(s: f64, b: &[f64], c: &[f64], a: &mut [f64]) {
    for ((av, bv), cv) in a.iter_mut().zip(b).zip(c) {
        *av = bv + s * cv;
    }
}

/// Bytes moved per element for each kernel (read + write, no write-allocate
/// accounting — the STREAM convention).
pub mod bytes_per_element {
    /// Copy: 8 read + 8 write.
    pub const COPY: f64 = 16.0;
    /// Scale: 8 read + 8 write.
    pub const SCALE: f64 = 16.0;
    /// Add: 16 read + 8 write.
    pub const ADD: f64 = 24.0;
    /// Triad: 16 read + 8 write.
    pub const TRIAD: f64 = 24.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_correctly() {
        let a = vec![1.0, 2.0, 3.0];
        let mut c = vec![0.0; 3];
        copy(&a, &mut c);
        assert_eq!(c, a);

        let mut b = vec![0.0; 3];
        scale(2.0, &c, &mut b);
        assert_eq!(b, vec![2.0, 4.0, 6.0]);

        let mut sum = vec![0.0; 3];
        add(&a, &b, &mut sum);
        assert_eq!(sum, vec![3.0, 6.0, 9.0]);

        let mut t = vec![0.0; 3];
        triad(10.0, &a, &b, &mut t);
        assert_eq!(t, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn triad_traffic_constant() {
        assert_eq!(bytes_per_element::TRIAD, 24.0);
    }
}
