//! Molecular-dynamics kernels — the short-range force path of the NAMD
//! proxy (§6.3): truncated Lennard-Jones forces with a cell list, advanced
//! by velocity Verlet.

/// Particle system state in a periodic cubic box.
#[derive(Debug, Clone)]
pub struct MdSystem {
    /// Box edge length.
    pub box_len: f64,
    /// Positions, xyz interleaved.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Interaction cutoff.
    pub cutoff: f64,
}

impl MdSystem {
    /// Place `n` particles on a jittered lattice with zero net momentum.
    pub fn lattice(n: usize, box_len: f64, cutoff: f64, seed: u64) -> MdSystem {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let side = (n as f64).cbrt().ceil() as usize;
        let spacing = box_len / side as f64;
        let mut pos = Vec::with_capacity(n);
        'outer: for k in 0..side {
            for j in 0..side {
                for i in 0..side {
                    if pos.len() == n {
                        break 'outer;
                    }
                    let jitter = 0.05 * spacing;
                    pos.push([
                        (i as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                        (j as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                        (k as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    ]);
                }
            }
        }
        let mut vel: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen_range(-0.1..0.1),
                    rng.gen_range(-0.1..0.1),
                    rng.gen_range(-0.1..0.1),
                ]
            })
            .collect();
        // Remove net momentum.
        let mut mean = [0.0; 3];
        for v in &vel {
            for d in 0..3 {
                mean[d] += v[d];
            }
        }
        for d in 0..3 {
            mean[d] /= n as f64;
        }
        for v in &mut vel {
            for d in 0..3 {
                v[d] -= mean[d];
            }
        }
        MdSystem {
            box_len,
            pos,
            vel,
            cutoff,
        }
    }

    fn min_image(&self, mut d: f64) -> f64 {
        let l = self.box_len;
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    }

    fn pair_force(&self, i: usize, j: usize) -> Option<([f64; 3], f64)> {
        let mut dr = [0.0; 3];
        let mut r2 = 0.0;
        for d in 0..3 {
            dr[d] = self.min_image(self.pos[i][d] - self.pos[j][d]);
            r2 += dr[d] * dr[d];
        }
        if r2 >= self.cutoff * self.cutoff || r2 == 0.0 {
            return None;
        }
        // Truncated LJ with sigma = eps = 1: F = 24 (2 r^-14 - r^-8) · dr.
        let inv_r2 = 1.0 / r2;
        let inv_r6 = inv_r2 * inv_r2 * inv_r2;
        let fmag = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
        let energy = 4.0 * inv_r6 * (inv_r6 - 1.0);
        Some(([dr[0] * fmag, dr[1] * fmag, dr[2] * fmag], energy))
    }

    /// All-pairs force computation (test oracle). Returns (forces, potential).
    pub fn forces_naive(&self) -> (Vec<[f64; 3]>, f64) {
        let n = self.pos.len();
        let mut f = vec![[0.0; 3]; n];
        let mut pot = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                if let Some((fij, e)) = self.pair_force(i, j) {
                    for d in 0..3 {
                        f[i][d] += fij[d];
                        f[j][d] -= fij[d];
                    }
                    pot += e;
                }
            }
        }
        (f, pot)
    }

    /// Cell-list force computation: O(N) for fixed density.
    pub fn forces_cell_list(&self) -> (Vec<[f64; 3]>, f64) {
        let n = self.pos.len();
        let cells_per_dim = ((self.box_len / self.cutoff).floor() as usize).max(1);
        if cells_per_dim < 3 {
            // Cells would self-overlap through periodicity; fall back.
            return self.forces_naive();
        }
        let cell_len = self.box_len / cells_per_dim as f64;
        let cell_of = |p: &[f64; 3]| -> [usize; 3] {
            let mut c = [0usize; 3];
            for d in 0..3 {
                let idx = (p[d] / cell_len).floor() as isize;
                c[d] = idx.rem_euclid(cells_per_dim as isize) as usize;
            }
            c
        };
        let ncells = cells_per_dim * cells_per_dim * cells_per_dim;
        let lin = |c: [usize; 3]| c[0] + c[1] * cells_per_dim + c[2] * cells_per_dim * cells_per_dim;
        let mut heads: Vec<Vec<usize>> = vec![Vec::new(); ncells];
        for (i, p) in self.pos.iter().enumerate() {
            heads[lin(cell_of(p))].push(i);
        }
        let mut f = vec![[0.0; 3]; n];
        let mut pot = 0.0;
        for cz in 0..cells_per_dim {
            for cy in 0..cells_per_dim {
                for cx in 0..cells_per_dim {
                    let home = &heads[lin([cx, cy, cz])];
                    // Pairs within the home cell.
                    for (a, &i) in home.iter().enumerate() {
                        for &j in &home[a + 1..] {
                            if let Some((fij, e)) = self.pair_force(i, j) {
                                for d in 0..3 {
                                    f[i][d] += fij[d];
                                    f[j][d] -= fij[d];
                                }
                                pot += e;
                            }
                        }
                    }
                    // Half the neighbour cells (avoid double counting).
                    for &(dx, dy, dz) in HALF_NEIGHBOURS {
                        let nb = [
                            (cx as isize + dx).rem_euclid(cells_per_dim as isize) as usize,
                            (cy as isize + dy).rem_euclid(cells_per_dim as isize) as usize,
                            (cz as isize + dz).rem_euclid(cells_per_dim as isize) as usize,
                        ];
                        for &i in home {
                            for &j in &heads[lin(nb)] {
                                if let Some((fij, e)) = self.pair_force(i, j) {
                                    for d in 0..3 {
                                        f[i][d] += fij[d];
                                        f[j][d] -= fij[d];
                                    }
                                    pot += e;
                                }
                            }
                        }
                    }
                }
            }
        }
        (f, pot)
    }

    /// One velocity-Verlet step of size `dt`. Returns (kinetic, potential).
    pub fn step(&mut self, dt: f64) -> (f64, f64) {
        let (f0, _) = self.forces_cell_list();
        let n = self.pos.len();
        for i in 0..n {
            for d in 0..3 {
                self.vel[i][d] += 0.5 * dt * f0[i][d];
                self.pos[i][d] = (self.pos[i][d] + dt * self.vel[i][d]).rem_euclid(self.box_len);
            }
        }
        let (f1, pot) = self.forces_cell_list();
        let mut kin = 0.0;
        for i in 0..n {
            for d in 0..3 {
                self.vel[i][d] += 0.5 * dt * f1[i][d];
                kin += 0.5 * self.vel[i][d] * self.vel[i][d];
            }
        }
        (kin, pot)
    }
}

/// The 13 "half" neighbour offsets (each unordered cell pair visited once).
const HALF_NEIGHBOURS: &[(isize, isize, isize)] = &[
    (1, 0, 0),
    (1, 1, 0),
    (0, 1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (1, 1, 1),
    (0, 1, 1),
    (-1, 1, 1),
    (1, -1, 1),
    (0, -1, 1),
    (-1, -1, 1),
    (0, 0, 1),
    (-1, 0, 1),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_list_matches_naive() {
        let sys = MdSystem::lattice(200, 12.0, 2.5, 1);
        let (fn_, pn) = sys.forces_naive();
        let (fc, pc) = sys.forces_cell_list();
        assert!((pn - pc).abs() < 1e-9 * pn.abs().max(1.0), "{pn} vs {pc}");
        for (a, b) in fn_.iter().zip(&fc) {
            for d in 0..3 {
                assert!((a[d] - b[d]).abs() < 1e-9, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        let sys = MdSystem::lattice(100, 10.0, 2.5, 2);
        let (f, _) = sys.forces_cell_list();
        for d in 0..3 {
            let total: f64 = f.iter().map(|v| v[d]).sum();
            assert!(total.abs() < 1e-9, "net force {total} in dim {d}");
        }
    }

    #[test]
    fn energy_approximately_conserved() {
        let mut sys = MdSystem::lattice(64, 8.0, 2.5, 3);
        let (k0, p0) = sys.step(1e-4);
        let e0 = k0 + p0;
        let mut e_last = e0;
        for _ in 0..50 {
            let (k, p) = sys.step(1e-4);
            e_last = k + p;
        }
        let drift = (e_last - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1e-3, "energy drift {drift}");
    }

    #[test]
    fn momentum_conserved_over_steps() {
        let mut sys = MdSystem::lattice(64, 8.0, 2.5, 4);
        for _ in 0..10 {
            sys.step(1e-4);
        }
        for d in 0..3 {
            let p: f64 = sys.vel.iter().map(|v| v[d]).sum();
            assert!(p.abs() < 1e-9, "net momentum {p}");
        }
    }

    #[test]
    fn positions_stay_in_box() {
        let mut sys = MdSystem::lattice(64, 8.0, 2.5, 5);
        for _ in 0..20 {
            sys.step(1e-3);
        }
        for p in &sys.pos {
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] < 8.0);
            }
        }
    }
}
