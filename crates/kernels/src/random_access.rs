//! HPCC RandomAccess (GUPS): random 64-bit XOR updates over a large table.
//!
//! Uses the official HPCC random stream: `a_{i+1} = (a_i << 1) ^ (a_i < 0 ?
//! POLY : 0)` over GF(2), i.e. a 63-bit LFSR with polynomial `POLY`.

/// The HPCC LFSR polynomial.
pub const POLY: u64 = 0x0000_0000_0000_0007;
const PERIOD: u64 = 1317624576693539401; // (2^63 - 1) / 7, per the HPCC spec

/// The HPCC random-number stream starting value for global index `n`
/// (direct jump-ahead computation, as in the reference implementation).
pub fn starts(n: u64) -> u64 {
    let n = n % PERIOD;
    if n == 0 {
        return 1;
    }
    // m2[i] = x^(2^i) mod P
    let mut m2 = [0u64; 64];
    let mut temp: u64 = 1;
    for slot in m2.iter_mut() {
        *slot = temp;
        for _ in 0..2 {
            temp = lfsr_step(temp);
        }
    }
    let mut i = 62usize;
    while i > 0 && (n >> i) & 1 == 0 {
        i -= 1;
    }
    let mut ran: u64 = 2;
    while i > 0 {
        temp = 0;
        for (j, &m) in m2.iter().enumerate() {
            if (ran >> j) & 1 != 0 {
                temp ^= m;
            }
        }
        ran = temp;
        i -= 1;
        if (n >> i) & 1 != 0 {
            ran = lfsr_step(ran);
        }
    }
    ran
}

#[inline]
fn lfsr_step(x: u64) -> u64 {
    (x << 1) ^ (if (x as i64) < 0 { POLY } else { 0 })
}

/// A RandomAccess table with the HPCC update rule.
pub struct GupsTable {
    table: Vec<u64>,
}

impl GupsTable {
    /// Allocate a table of `size` words (must be a power of two),
    /// initialized to `table[i] = i` as HPCC specifies.
    pub fn new(size: usize) -> GupsTable {
        assert!(size.is_power_of_two(), "table size must be a power of two");
        GupsTable {
            table: (0..size as u64).collect(),
        }
    }

    /// Run `updates` through the stream beginning at global index `start`.
    /// Returns the number of updates applied.
    pub fn run(&mut self, start: u64, updates: u64) -> u64 {
        let mask = (self.table.len() - 1) as u64;
        let mut ran = starts(start);
        for _ in 0..updates {
            ran = lfsr_step(ran);
            let idx = (ran & mask) as usize;
            self.table[idx] ^= ran;
        }
        updates
    }

    /// HPCC verification: re-running the same update stream must restore the
    /// initial table (XOR is an involution when every update is replayed).
    /// Returns the number of table entries differing from `i`.
    pub fn verify(&mut self, start: u64, updates: u64) -> usize {
        self.run(start, updates);
        self.table
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v != i as u64)
            .count()
    }

    /// Borrow the table.
    pub fn table(&self) -> &[u64] {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zero_is_one() {
        assert_eq!(starts(0), 1);
    }

    #[test]
    fn starts_jump_ahead_matches_stepping() {
        // Jump-ahead to n must equal stepping the LFSR n times from starts(0)...
        // The HPCC convention: starts(n) is the state *before* the n-th update.
        let mut x = starts(1);
        for n in 2..50u64 {
            x = lfsr_step(x);
            assert_eq!(starts(n), x, "n={n}");
        }
    }

    #[test]
    fn replaying_stream_restores_table() {
        let mut t = GupsTable::new(1024);
        t.run(0, 4096);
        let errors = t.verify(0, 4096);
        assert_eq!(errors, 0);
    }

    #[test]
    fn updates_actually_change_table() {
        let mut t = GupsTable::new(256);
        // Start deep in the stream: the early LFSR states from seed 1 have
        // few bits set and hit only a handful of slots.
        t.run(987_654_321, 1000);
        let changed = t
            .table()
            .iter()
            .enumerate()
            .filter(|&(i, &v)| v != i as u64)
            .count();
        assert!(changed > 100, "only {changed} entries changed");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_table_panics() {
        GupsTable::new(1000);
    }
}
