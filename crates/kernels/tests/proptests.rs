//! Property-based tests over the numerical kernels: the invariants hold for
//! *arbitrary* inputs, not just the unit-test fixtures.

use proptest::prelude::*;

use xtsim_kernels::cg::{cg, cg_chronopoulos_gear, laplacian_2d, Csr};
use xtsim_kernels::complex::C64;
use xtsim_kernels::fft::{dft_reference, fft, ifft};
use xtsim_kernels::lu::{hpl_residual, lu_factor};
use xtsim_kernels::md::MdSystem;
use xtsim_kernels::ptrans::transpose;
use xtsim_kernels::random_access::GupsTable;
use xtsim_kernels::stream;
use xtsim_kernels::zlu::{zlu_factor, zresidual};

fn signal(len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_ifft_roundtrip(exp in 1usize..9, vals in signal(256)) {
        let n = 1 << exp;
        let orig: Vec<C64> = vals[..n].iter().map(|&(r, i)| C64::new(r, i)).collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_matches_dft(exp in 1usize..7, vals in signal(64)) {
        let n = 1 << exp;
        let orig: Vec<C64> = vals[..n].iter().map(|&(r, i)| C64::new(r, i)).collect();
        let expect = dft_reference(&orig);
        let mut got = orig;
        fft(&mut got);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((*g - *e).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_is_linear(exp in 1usize..7, a in signal(64), b in signal(64), k in -3.0f64..3.0) {
        let n = 1 << exp;
        let av: Vec<C64> = a[..n].iter().map(|&(r, i)| C64::new(r, i)).collect();
        let bv: Vec<C64> = b[..n].iter().map(|&(r, i)| C64::new(r, i)).collect();
        // fft(a + k b) == fft(a) + k fft(b)
        let mut combo: Vec<C64> = av.iter().zip(&bv).map(|(x, y)| *x + y.scale(k)).collect();
        fft(&mut combo);
        let mut fa = av;
        fft(&mut fa);
        let mut fb = bv;
        fft(&mut fb);
        for ((c, x), y) in combo.iter().zip(&fa).zip(&fb) {
            prop_assert!((*c - (*x + y.scale(k))).abs() < 1e-6 * (n as f64));
        }
    }

    #[test]
    fn lu_solves_diagonally_dominant_systems(
        n in 2usize..24,
        seed in prop::collection::vec(-1.0f64..1.0, 24 * 24 + 24),
    ) {
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = seed[n * n + i];
            for j in 0..n {
                a[i * n + j] = seed[i * n + j];
            }
            // Diagonal dominance guarantees a well-conditioned system.
            a[i * n + i] += n as f64;
        }
        let f = lu_factor(n, &a).expect("dominant => nonsingular");
        let x = f.solve(&b);
        prop_assert!(hpl_residual(n, &a, &x, &b) < 32.0);
    }

    #[test]
    fn zlu_solves_dominant_complex_systems(
        n in 2usize..16,
        seed in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 16 * 16 + 16),
    ) {
        let mut a = vec![C64::ZERO; n * n];
        let mut b = vec![C64::ZERO; n];
        for i in 0..n {
            b[i] = C64::new(seed[n * n + i].0, seed[n * n + i].1);
            for j in 0..n {
                a[i * n + j] = C64::new(seed[i * n + j].0, seed[i * n + j].1);
            }
            a[i * n + i] += C64::new(n as f64, 0.0);
        }
        let f = zlu_factor(n, &a).expect("dominant => nonsingular");
        let x = f.solve(&b);
        prop_assert!(zresidual(n, &a, &x, &b) < 1e-9);
    }

    #[test]
    fn cg_variants_agree_on_spd_systems(
        nx in 3usize..12,
        ny in 3usize..12,
        rhs in prop::collection::vec(-10.0f64..10.0, 12 * 12),
    ) {
        let a = laplacian_2d(nx, ny);
        let b: Vec<f64> = rhs[..a.n].to_vec();
        let std = cg(&a, &b, 1e-11, 5000);
        let cgv = cg_chronopoulos_gear(&a, &b, 1e-11, 5000);
        prop_assert!(std.converged && cgv.converged);
        for (x, y) in std.x.iter().zip(&cgv.x) {
            prop_assert!((x - y).abs() < 1e-5);
        }
        // The C-G variant always does half the reductions per iteration.
        prop_assert_eq!(cgv.reductions, cgv.iterations + 1);
    }

    #[test]
    fn spmv_linearity(
        nx in 2usize..10,
        ny in 2usize..10,
        v in prop::collection::vec(-5.0f64..5.0, 100),
        k in -4.0f64..4.0,
    ) {
        let a: Csr = laplacian_2d(nx, ny);
        let x: Vec<f64> = v[..a.n].to_vec();
        let kx: Vec<f64> = x.iter().map(|t| t * k).collect();
        let mut y1 = vec![0.0; a.n];
        let mut y2 = vec![0.0; a.n];
        a.spmv(&x, &mut y1);
        a.spmv(&kx, &mut y2);
        for (p, q) in y1.iter().zip(&y2) {
            prop_assert!((p * k - q).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_involution(rows in 1usize..40, cols in 1usize..40, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut t = vec![0.0; rows * cols];
        let mut back = vec![0.0; rows * cols];
        transpose(rows, cols, &a, &mut t);
        transpose(cols, rows, &t, &mut back);
        prop_assert_eq!(a, back);
    }

    #[test]
    fn gups_replay_restores_table(log_size in 4u32..12, start in any::<u64>(), updates in 1u64..2000) {
        let mut t = GupsTable::new(1 << log_size);
        t.run(start % (1 << 40), updates);
        prop_assert_eq!(t.verify(start % (1 << 40), updates), 0);
    }

    #[test]
    fn stream_triad_pointwise(s in -10.0f64..10.0, vals in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..200)) {
        let b: Vec<f64> = vals.iter().map(|v| v.0).collect();
        let c: Vec<f64> = vals.iter().map(|v| v.1).collect();
        let mut a = vec![0.0; b.len()];
        stream::triad(s, &b, &c, &mut a);
        for i in 0..a.len() {
            prop_assert!((a[i] - (b[i] + s * c[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn md_conserves_momentum(n in 8usize..60, seed in any::<u64>()) {
        let mut sys = MdSystem::lattice(n, 9.0, 2.5, seed);
        for _ in 0..3 {
            sys.step(1e-4);
        }
        for d in 0..3 {
            let p: f64 = sys.vel.iter().map(|v| v[d]).sum();
            prop_assert!(p.abs() < 1e-8, "dim {} momentum {}", d, p);
        }
    }

    #[test]
    fn md_cell_list_equals_naive(n in 8usize..80, seed in any::<u64>()) {
        let sys = MdSystem::lattice(n, 10.0, 2.5, seed);
        let (f1, p1) = sys.forces_naive();
        let (f2, p2) = sys.forces_cell_list();
        prop_assert!((p1 - p2).abs() <= 1e-9 * p1.abs().max(1.0));
        for (a, b) in f1.iter().zip(&f2) {
            for d in 0..3 {
                prop_assert!((a[d] - b[d]).abs() < 1e-9);
            }
        }
    }
}
