//! Property-based tests over the torus topology and routing.

use proptest::prelude::*;

use xtsim_net::torus::{Direction, Torus3D};
use xtsim_net::{ContentionModel, Placement, Platform, PlatformConfig};
use xtsim_des::Sim;
use xtsim_machine::{fit_dims, presets, ExecMode};

fn dims() -> impl Strategy<Value = [usize; 3]> {
    ([1usize..8, 1usize..8, 1usize..8]).prop_map(|d| d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Route length equals the torus Manhattan distance, and the route is a
    /// valid walk from src to dst.
    #[test]
    fn route_length_equals_hops(d in dims(), a in any::<usize>(), b in any::<usize>()) {
        let t = Torus3D::new(d);
        let n = t.node_count();
        let (a, b) = (a % n, b % n);
        let route = t.route(a, b);
        prop_assert_eq!(route.len(), t.hops(a, b));
        // Walk the links.
        let mut cur = a;
        for link in &route {
            prop_assert_eq!(link.from, cur);
            let c = t.coords(cur);
            let step = |v: usize, dim: usize, up: bool| {
                if up { (v + 1) % d[dim] } else { (v + d[dim] - 1) % d[dim] }
            };
            cur = match link.direction {
                Direction::XPlus => t.node_at([step(c[0], 0, true), c[1], c[2]]),
                Direction::XMinus => t.node_at([step(c[0], 0, false), c[1], c[2]]),
                Direction::YPlus => t.node_at([c[0], step(c[1], 1, true), c[2]]),
                Direction::YMinus => t.node_at([c[0], step(c[1], 1, false), c[2]]),
                Direction::ZPlus => t.node_at([c[0], c[1], step(c[2], 2, true)]),
                Direction::ZMinus => t.node_at([c[0], c[1], step(c[2], 2, false)]),
            };
        }
        prop_assert_eq!(cur, b);
    }

    /// Hop distance is a metric: symmetric, zero iff equal, triangle holds.
    #[test]
    fn hops_is_a_metric(d in dims(), a in any::<usize>(), b in any::<usize>(), c in any::<usize>()) {
        let t = Torus3D::new(d);
        let n = t.node_count();
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert_eq!(t.hops(a, a), 0);
        if a != b {
            prop_assert!(t.hops(a, b) > 0);
        }
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    /// Hop count never exceeds the torus diameter.
    #[test]
    fn hops_bounded_by_diameter(d in dims(), a in any::<usize>(), b in any::<usize>()) {
        let t = Torus3D::new(d);
        let n = t.node_count();
        let diameter: usize = d.iter().map(|&k| k / 2).sum();
        prop_assert!(t.hops(a % n, b % n) <= diameter);
    }

    /// fit_dims always produces enough capacity with bounded waste.
    #[test]
    fn fit_dims_capacity(nodes in 1usize..20_000) {
        let d = fit_dims(nodes);
        let vol = d[0] * d[1] * d[2];
        prop_assert!(vol >= nodes);
        prop_assert!(vol <= 2 * nodes + 8, "{nodes} -> {:?}", d);
    }

    /// Message latency is monotone in distance on an idle machine.
    #[test]
    fn latency_monotone_in_distance(seedbytes in 0u64..3) {
        let bytes = [0u64, 8, 1024][seedbytes as usize];
        let mut spec = presets::xt4();
        spec.torus_dims = [6, 6, 6];
        let sim = Sim::new(0);
        let p = Platform::new(sim.handle(), PlatformConfig {
            spec,
            mode: ExecMode::SN,
            ranks: 216,
            contention: ContentionModel::Counting,
            placement: Placement::Block,
        });
        // Distances 1, 3, 9 hops along the block-placed ranks.
        let mut last = 0.0f64;
        for dst in [1usize, 3, 9] {
            let p2 = p.clone();
            let mut sim2 = Sim::new(0);
            let plat = Platform::new(sim2.handle(), PlatformConfig {
                spec: p2.spec().clone(),
                mode: ExecMode::SN,
                ranks: 216,
                contention: ContentionModel::Counting,
                placement: Placement::Block,
            });
            let plat2 = plat.clone();
            sim2.spawn(async move { plat2.transmit(0, dst, bytes).await });
            let t = sim2.run().as_secs_f64();
            prop_assert!(t >= last, "dst {}: {} < {}", dst, t, last);
            last = t;
        }
        drop(sim);
    }
}
