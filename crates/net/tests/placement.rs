//! Placement-policy and estimate-consistency tests for the platform layer.

use std::cell::RefCell;
use std::rc::Rc;
use xtsim_des::Sim;
use xtsim_machine::{presets, ExecMode};
use xtsim_net::{ContentionModel, Placement, Platform, PlatformConfig};

fn config(placement: Placement, mode: ExecMode, ranks: usize) -> PlatformConfig {
    let mut spec = presets::xt4();
    spec.torus_dims = [4, 4, 4];
    PlatformConfig {
        spec,
        mode,
        ranks,
        contention: ContentionModel::Fluid,
        placement,
    }
}

#[test]
fn round_robin_spreads_ranks() {
    let mut sim = Sim::new(0);
    let p = Platform::new(sim.handle(), config(Placement::RoundRobin, ExecMode::VN, 128));
    // Rank i sits on node i % 64; siblings are i and i + 64.
    assert_eq!(p.node_of(0), 0);
    assert_eq!(p.node_of(1), 1);
    assert_eq!(p.node_of(64), 0);
    assert_eq!(p.node_of(127), 63);
    sim.run();
}

#[test]
fn round_robin_vs_block_changes_locality() {
    // Ranks 0 and 1: same node under block (VN), different nodes under RR.
    let time = |placement| {
        let mut sim = Sim::new(0);
        let p = Platform::new(sim.handle(), config(placement, ExecMode::VN, 128));
        let p2 = p.clone();
        sim.spawn(async move { p2.transmit(0, 1, 0).await });
        sim.run().as_secs_f64()
    };
    let block = time(Placement::Block);
    let rr = time(Placement::RoundRobin);
    assert!(block < rr, "block {block} (memcpy) vs rr {rr} (network)");
}

#[test]
fn estimate_brackets_simulated_times_across_sizes() {
    let sim = Sim::new(0);
    let p = Platform::new(sim.handle(), config(Placement::Block, ExecMode::SN, 64));
    drop(sim);
    for bytes in [0u64, 8, 4096, 1 << 20] {
        let est = p.message_time_estimate(bytes).as_secs_f64();
        // Re-simulate a fresh platform for the actual transfer (mean-hop
        // estimate vs a 1-hop transfer: estimate must be within ~3x).
        let mut sim = Sim::new(0);
        let q = Platform::new(sim.handle(), config(Placement::Block, ExecMode::SN, 64));
        let q2 = q.clone();
        sim.spawn(async move { q2.transmit(0, 1, bytes).await });
        let t = sim.run().as_secs_f64();
        assert!(est > 0.3 * t && est < 3.0 * t, "{bytes}: est {est} vs sim {t}");
    }
}

#[test]
fn traffic_stats_count_every_path() {
    let mut sim = Sim::new(0);
    let p = Platform::new(sim.handle(), config(Placement::Block, ExecMode::VN, 8));
    let p2 = p.clone();
    sim.spawn(async move {
        p2.transmit(0, 1, 10).await; // intra-node
        p2.transmit(0, 2, 20).await; // inter-node
        p2.transmit(0, 2, 0).await; // control message
    });
    sim.run();
    let s = p.stats();
    assert_eq!(s.messages, 3);
    assert_eq!(s.bytes, 30);
    assert_eq!(s.intra_node_messages, 1);
}

#[test]
fn vn_receiver_nic_also_serializes() {
    // Two senders on different nodes target the two cores of one node: the
    // shared receive NIC must serialize their arrival processing.
    let run = |two: bool| {
        let mut sim = Sim::new(0);
        let p = Platform::new(sim.handle(), config(Placement::Block, ExecMode::VN, 8));
        let done = Rc::new(RefCell::new(0.0f64));
        for (src, dst) in [(2usize, 0usize), (4, 1)] {
            if !two && src == 4 {
                continue;
            }
            let p2 = p.clone();
            let h = sim.handle();
            let done = Rc::clone(&done);
            sim.spawn(async move {
                p2.transmit(src, dst, 8).await;
                let mut d = done.borrow_mut();
                *d = d.max(h.now().as_secs_f64());
            });
        }
        sim.run();
        let v = *done.borrow();
        v
    };
    let one = run(false);
    let both = run(true);
    assert!(both > one, "recv NIC contention invisible: {one} vs {both}");
}
