//! The simulated compute platform: nodes, NICs, memory controllers, torus.
//!
//! A [`Platform`] instantiates one machine (a [`MachineSpec`]) inside a
//! discrete-event simulation and exposes the two operations every higher
//! layer is built from:
//!
//! * [`Platform::compute`] — execute a [`WorkPacket`] on a rank's core,
//!   contending on the socket's shared memory controller and random-access
//!   capacity (this is where SN/VN memory contention comes from);
//! * [`Platform::transmit`] — move a message between ranks, paying NIC
//!   software overhead (serialized through the node's NIC in VN mode), router
//!   hop latency, and a bandwidth phase over the injection port and torus
//!   links.
//!
//! Two contention models are available for the bandwidth phase:
//! [`ContentionModel::Fluid`] (exact max-min sharing, for small/medium runs)
//! and [`ContentionModel::Counting`] (per-link active-flow counters sampled
//! at message start — cheap enough for 20k-rank runs).

use std::cell::RefCell;
use std::rc::Rc;

use xtsim_des::trace::{self, SpanCategory};
use xtsim_des::{join2, FifoStation, FluidPool, LinkId, RebalanceStats, SimDuration, SimHandle};
use xtsim_machine::{ExecMode, MachineSpec, WorkPacket};

use crate::torus::{NodeId, Torus3D, TorusLink};

/// An MPI-style process index on the platform.
pub type Rank = usize;

/// How the bandwidth phase of a message is priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionModel {
    /// Exact max-min fair sharing over injection/ejection ports and every
    /// torus link (FluidPool). Accurate; O(flows × links-in-use) per change.
    Fluid,
    /// Active-flow counters per link, sampled when the message starts.
    /// Approximate but O(hops) per message; use for >~4k-rank runs.
    Counting,
}

/// How ranks map to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Consecutive ranks fill a node before moving on (XT default: in VN
    /// mode ranks 2i and 2i+1 share node i).
    Block,
    /// Ranks round-robin across nodes first.
    RoundRobin,
}

/// Configuration for [`Platform::new`].
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Machine description.
    pub spec: MachineSpec,
    /// SN or VN execution mode.
    pub mode: ExecMode,
    /// Number of ranks in the job.
    pub ranks: usize,
    /// Bandwidth contention model.
    pub contention: ContentionModel,
    /// Rank→node mapping policy.
    pub placement: Placement,
}

impl PlatformConfig {
    /// Convenience constructor with block placement and automatic contention
    /// model choice (fluid up to 2,048 ranks, counting beyond).
    pub fn new(spec: MachineSpec, mode: ExecMode, ranks: usize) -> Self {
        let contention = if ranks <= 2048 {
            ContentionModel::Fluid
        } else {
            ContentionModel::Counting
        };
        PlatformConfig {
            spec,
            mode,
            ranks,
            contention,
            placement: Placement::Block,
        }
    }
}

/// Cumulative traffic statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrafficStats {
    /// Messages fully delivered.
    pub messages: u64,
    /// Payload bytes fully delivered.
    pub bytes: u64,
    /// Messages that stayed inside one node (core-to-core memcpy).
    pub intra_node_messages: u64,
}

struct PlatformInner {
    handle: SimHandle,
    spec: MachineSpec,
    mode: ExecMode,
    contention: ContentionModel,
    torus: Torus3D,
    rank_node: Vec<NodeId>,
    /// Per-node NIC processing station (1 server: the paper's shared-NIC
    /// serialization in VN mode).
    nic: Vec<FifoStation>,
    /// Per-node memory pool: [stream link, random link].
    mem_pools: Vec<FluidPool>,
    mem_stream: Vec<LinkId>,
    mem_random: Vec<LinkId>,
    /// Network fluid pool (Fluid model only).
    net_pool: Option<FluidPool>,
    /// injection / ejection link per node (Fluid model).
    inj: Vec<LinkId>,
    ej: Vec<LinkId>,
    /// torus link ids indexed by `TorusLink::index()` (Fluid model).
    links: Vec<LinkId>,
    /// Counting model state: active flows per torus link / injection / ejection.
    link_load: RefCell<Vec<u32>>,
    inj_load: RefCell<Vec<u32>>,
    ej_load: RefCell<Vec<u32>>,
    /// Reusable per-message route buffers (torus hops, fluid link route):
    /// the transmit hot path must not allocate per message. Never held
    /// across an await.
    route_scratch: RefCell<(Vec<TorusLink>, Vec<LinkId>)>,
    stats: RefCell<TrafficStats>,
}

/// A simulated machine instance hosting `ranks` MPI-style processes.
#[derive(Clone)]
pub struct Platform {
    inner: Rc<PlatformInner>,
}

impl Platform {
    /// Instantiate the platform inside simulation `handle`.
    ///
    /// Panics if the job cannot fit (`ranks > max_ranks(mode)`).
    pub fn new(handle: SimHandle, config: PlatformConfig) -> Platform {
        let PlatformConfig {
            spec,
            mode,
            ranks,
            contention,
            placement,
        } = config;
        assert!(ranks >= 1, "need at least one rank");
        assert!(
            ranks <= spec.max_ranks(mode),
            "{ranks} ranks exceed {} ({} mode on {} nodes)",
            spec.max_ranks(mode),
            mode,
            spec.node_count()
        );
        let torus = Torus3D::new(spec.torus_dims);
        let nodes = torus.node_count();
        let rpn = spec.ranks_per_node(mode);
        let rank_node: Vec<NodeId> = (0..ranks)
            .map(|r| match placement {
                Placement::Block => r / rpn,
                Placement::RoundRobin => r % nodes,
            })
            .collect();
        let used_nodes = rank_node.iter().copied().max().unwrap_or(0) + 1;

        let nic: Vec<FifoStation> = (0..used_nodes)
            .map(|_| FifoStation::new(handle.clone(), 1))
            .collect();

        let mut mem_pools = Vec::with_capacity(used_nodes);
        let mut mem_stream = Vec::with_capacity(used_nodes);
        let mut mem_random = Vec::with_capacity(used_nodes);
        for _ in 0..used_nodes {
            let pool = FluidPool::new(handle.clone());
            mem_stream.push(pool.add_link(spec.memory.stream_bw_socket_gbs * 1e9));
            mem_random.push(pool.add_link(spec.memory.random_gups_socket * 1e9));
            mem_pools.push(pool);
        }

        let (net_pool, inj, ej, links) = match contention {
            ContentionModel::Fluid => {
                let pool = FluidPool::new(handle.clone());
                let inj_dir = spec.nic.injection_bw_gbs * 1e9 / 2.0;
                let inj: Vec<LinkId> = (0..used_nodes).map(|_| pool.add_link(inj_dir)).collect();
                let ej: Vec<LinkId> = (0..used_nodes).map(|_| pool.add_link(inj_dir)).collect();
                let link_bw = spec.nic.link_bw_gbs * 1e9;
                let links: Vec<LinkId> = (0..torus.link_count())
                    .map(|_| pool.add_link(link_bw))
                    .collect();
                (Some(pool), inj, ej, links)
            }
            ContentionModel::Counting => (None, Vec::new(), Vec::new(), Vec::new()),
        };

        Platform {
            inner: Rc::new(PlatformInner {
                handle,
                spec,
                mode,
                contention,
                link_load: RefCell::new(vec![0; torus.link_count()]),
                inj_load: RefCell::new(vec![0; used_nodes]),
                ej_load: RefCell::new(vec![0; used_nodes]),
                route_scratch: RefCell::new((Vec::new(), Vec::new())),
                torus,
                rank_node,
                nic,
                mem_pools,
                mem_stream,
                mem_random,
                net_pool,
                inj,
                ej,
                links,
                stats: RefCell::new(TrafficStats::default()),
            }),
        }
    }

    /// Simulation handle the platform lives in.
    pub fn handle(&self) -> &SimHandle {
        &self.inner.handle
    }

    /// Machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.inner.spec
    }

    /// Execution mode of this job.
    pub fn mode(&self) -> ExecMode {
        self.inner.mode
    }

    /// Number of ranks in the job.
    pub fn ranks(&self) -> usize {
        self.inner.rank_node.len()
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.inner.rank_node[rank]
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> TrafficStats {
        *self.inner.stats.borrow()
    }

    /// Work counters of the network fluid pool's incremental rebalancer
    /// (all zero under the Counting model, which has no pool). See
    /// EXPERIMENTS.md, "Profiling the simulator".
    pub fn net_rebalance_stats(&self) -> RebalanceStats {
        self.inner
            .net_pool
            .as_ref()
            .map(|p| p.rebalance_stats())
            .unwrap_or_default()
    }

    /// Torus topology.
    pub fn torus(&self) -> &Torus3D {
        &self.inner.torus
    }

    /// Execute `work` on `rank`'s core. Contends with the node's other core
    /// for streaming bandwidth and random-access capacity.
    pub async fn compute(&self, rank: Rank, work: WorkPacket) {
        let inner = &self.inner;
        let node = inner.rank_node[rank];
        let spec = &inner.spec;
        let t_flop = work.flop_time(spec);
        let pool = &inner.mem_pools[node];
        // Flop phase overlaps the streaming phase (hardware prefetch).
        let flop_sleep = inner.handle.sleep(SimDuration::from_secs_f64(t_flop));
        let stream = pool.transfer(
            &[inner.mem_stream[node]],
            work.shared_dram_bytes,
            // One core alone may saturate the controller; the cap prevents a
            // single flow from exceeding the single-stream limit.
            Some(spec.memory.single_stream_bw_gbs * 1e9),
        );
        join2(flop_sleep, stream).await;
        // Serial (dependence-limited) memory phase: latency-bound traffic
        // that does not contend for controller bandwidth (see DESIGN.md).
        if work.serial_dram_bytes > 0.0 {
            let t = work.serial_dram_bytes / (spec.memory.single_stream_bw_gbs * 1e9);
            inner.handle.sleep(SimDuration::from_secs_f64(t)).await;
        }
        // Random-access phase: contends on the socket's GUPS capacity.
        if work.random_refs > 0.0 {
            pool.transfer(&[inner.mem_random[node]], work.random_refs, None)
                .await;
        }
    }

    /// Pure-math estimate of an uncontended message time (used by modeled
    /// collectives): overheads + mean-hop router latency + bandwidth term.
    pub fn message_time_estimate(&self, bytes: u64) -> SimDuration {
        let spec = &self.inner.spec;
        let o = spec.nic.sw_overhead_us
            + if self.inner.mode == ExecMode::VN {
                spec.nic.vn_extra_overhead_us
            } else {
                0.0
            };
        let hops = self.inner.torus.mean_hops();
        let lat_s = o * 1e-6 + hops * spec.nic.per_hop_ns * 1e-9;
        let bw = (spec.nic.injection_bw_gbs * 1e9 / 2.0).min(spec.nic.link_bw_gbs * 1e9);
        let mut t = lat_s + bytes as f64 / bw;
        if bytes > spec.nic.eager_threshold_bytes {
            t += spec.nic.rendezvous_latency_us * 1e-6;
        }
        SimDuration::from_secs_f64(t)
    }

    /// Move `bytes` of payload from `src` to `dst`, resolving when the last
    /// byte has been delivered (wire-level: MPI matching is layered above).
    ///
    /// `bytes == 0` models a control message (latency only).
    pub async fn transmit(&self, src: Rank, dst: Rank, bytes: u64) {
        let inner = &self.inner;
        let src_node = inner.rank_node[src];
        let dst_node = inner.rank_node[dst];
        {
            let mut st = inner.stats.borrow_mut();
            st.messages += 1;
            st.bytes += bytes;
            if src_node == dst_node {
                st.intra_node_messages += 1;
            }
        }
        let t0 = trace::capture_active().then(|| inner.handle.now());
        if src_node == dst_node {
            self.transmit_intra(src_node, bytes).await;
        } else {
            self.transmit_inter(src_node, dst_node, bytes).await;
        }
        if let Some(t0) = t0 {
            let hops = if src_node == dst_node {
                0
            } else {
                inner.torus.hops(src_node, dst_node)
            };
            trace::span(
                SpanCategory::Flow,
                "flow",
                None,
                Some(src_node as u32),
                t0,
                inner.handle.now(),
                vec![
                    ("src", src as f64),
                    ("dst", dst as f64),
                    ("bytes", bytes as f64),
                    ("hops", hops as f64),
                ],
            );
        }
    }

    /// Intra-node path: a memory copy through the shared controller (§2 of
    /// the paper), with half the network software overhead.
    async fn transmit_intra(&self, node: NodeId, bytes: u64) {
        let inner = &self.inner;
        let spec = &inner.spec;
        let o = spec.nic.sw_overhead_us * 0.5e-6;
        inner.handle.sleep(SimDuration::from_secs_f64(o)).await;
        if bytes > 0 {
            inner.mem_pools[node]
                .transfer(
                    &[inner.mem_stream[node]],
                    bytes as f64,
                    Some(spec.nic.memcpy_bw_gbs * 1e9),
                )
                .await;
        }
    }

    async fn transmit_inter(&self, src_node: NodeId, dst_node: NodeId, bytes: u64) {
        let inner = &self.inner;
        let spec = &inner.spec;
        let vn_extra = if inner.mode == ExecMode::VN {
            spec.nic.vn_extra_overhead_us * 0.5
        } else {
            0.0
        };
        let o_side = SimDuration::from_secs_f64((spec.nic.sw_overhead_us * 0.5 + vn_extra) * 1e-6);

        // Send-side software overhead, serialized through the source NIC.
        inner.nic[src_node].serve(o_side).await;

        // Router traversal.
        let hops = inner.torus.hops(src_node, dst_node);
        inner
            .handle
            .sleep(SimDuration::from_secs_f64(
                hops as f64 * spec.nic.per_hop_ns * 1e-9,
            ))
            .await;

        // Bandwidth phase.
        if bytes > 0 {
            match inner.contention {
                ContentionModel::Fluid => {
                    let pool = inner.net_pool.as_ref().expect("fluid pool present");
                    // Build the fluid route in the reusable scratch; the
                    // transfer copies it, so the borrow ends before the await.
                    let transfer = {
                        let mut scratch = inner.route_scratch.borrow_mut();
                        let (hop_buf, route_buf) = &mut *scratch;
                        hop_buf.clear();
                        inner.torus.route_into(src_node, dst_node, hop_buf);
                        route_buf.clear();
                        route_buf.reserve(hop_buf.len() + 2);
                        route_buf.push(inner.inj[src_node]);
                        for l in hop_buf.iter() {
                            route_buf.push(inner.links[l.index()]);
                        }
                        route_buf.push(inner.ej[dst_node]);
                        pool.transfer(route_buf, bytes as f64, None)
                    };
                    transfer.await;
                }
                ContentionModel::Counting => {
                    // Sample the bottleneck and register load in one pass
                    // over the route (scratch-buffered, allocation-free).
                    let t = {
                        let mut scratch = inner.route_scratch.borrow_mut();
                        let (hop_buf, _) = &mut *scratch;
                        hop_buf.clear();
                        inner.torus.route_into(src_node, dst_node, hop_buf);
                        let t = self.counting_transfer_time(src_node, dst_node, bytes, hop_buf);
                        let mut ll = inner.link_load.borrow_mut();
                        for l in hop_buf.iter() {
                            ll[l.index()] += 1;
                        }
                        inner.inj_load.borrow_mut()[src_node] += 1;
                        inner.ej_load.borrow_mut()[dst_node] += 1;
                        t
                    };
                    inner.handle.sleep(t).await;
                    {
                        let mut scratch = inner.route_scratch.borrow_mut();
                        let (hop_buf, _) = &mut *scratch;
                        hop_buf.clear();
                        inner.torus.route_into(src_node, dst_node, hop_buf);
                        let mut ll = inner.link_load.borrow_mut();
                        for l in hop_buf.iter() {
                            ll[l.index()] -= 1;
                        }
                        inner.inj_load.borrow_mut()[src_node] -= 1;
                        inner.ej_load.borrow_mut()[dst_node] -= 1;
                    }
                }
            }
        }

        // Receive-side software overhead, serialized through the destination NIC.
        inner.nic[dst_node].serve(o_side).await;
    }

    /// Counting-model bandwidth phase duration: the message runs at the
    /// bottleneck of its route (`hops`, precomputed by the caller) with the
    /// load sampled at start (self included).
    fn counting_transfer_time(
        &self,
        src_node: NodeId,
        dst_node: NodeId,
        bytes: u64,
        hops: &[TorusLink],
    ) -> SimDuration {
        let inner = &self.inner;
        let spec = &inner.spec;
        let inj_dir = spec.nic.injection_bw_gbs * 1e9 / 2.0;
        let link_bw = spec.nic.link_bw_gbs * 1e9;
        let inj_flows = (inner.inj_load.borrow()[src_node] + 1) as f64;
        let ej_flows = (inner.ej_load.borrow()[dst_node] + 1) as f64;
        let mut max_link_load = 1u32;
        {
            let ll = inner.link_load.borrow();
            for l in hops {
                max_link_load = max_link_load.max(ll[l.index()] + 1);
            }
        }
        let bw = (inj_dir / inj_flows)
            .min(inj_dir / ej_flows)
            .min(link_bw / max_link_load as f64);
        SimDuration::from_secs_f64(bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use xtsim_des::Sim;
    use xtsim_machine::presets;

    fn small_xt4(ranks: usize, mode: ExecMode, contention: ContentionModel) -> PlatformConfig {
        let mut spec = presets::xt4();
        spec.torus_dims = [4, 4, 4];
        PlatformConfig {
            spec,
            mode,
            ranks,
            contention,
            placement: Placement::Block,
        }
    }

    fn run_one<F, Fut>(config: PlatformConfig, f: F) -> f64
    where
        F: FnOnce(Platform) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let mut sim = Sim::new(1);
        let plat = Platform::new(sim.handle(), config);
        sim.spawn(f(plat));
        sim.run().as_secs_f64()
    }

    #[test]
    fn block_placement_pairs_ranks_on_nodes() {
        let mut sim = Sim::new(0);
        let p = Platform::new(sim.handle(), small_xt4(8, ExecMode::VN, ContentionModel::Fluid));
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(1), 0);
        assert_eq!(p.node_of(2), 1);
        assert_eq!(p.node_of(7), 3);
        let p2 = Platform::new(sim.handle(), small_xt4(8, ExecMode::SN, ContentionModel::Fluid));
        assert_eq!(p2.node_of(1), 1);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversubscription_panics() {
        let mut sim = Sim::new(0);
        // 4x4x4 = 64 nodes, SN mode: max 64 ranks.
        let _ = Platform::new(sim.handle(), small_xt4(65, ExecMode::SN, ContentionModel::Fluid));
        sim.run();
    }

    #[test]
    fn small_message_latency_is_overhead_dominated() {
        // SN-mode XT4 8-byte message: ~ sw_overhead (3.8us) + hops*50ns.
        let t = run_one(
            small_xt4(2, ExecMode::SN, ContentionModel::Fluid),
            |p| async move {
                p.transmit(0, 1, 8).await;
            },
        );
        assert!(t > 3.8e-6 && t < 4.5e-6, "latency {t}");
    }

    #[test]
    fn vn_mode_latency_exceeds_sn() {
        let sn = run_one(
            small_xt4(4, ExecMode::SN, ContentionModel::Fluid),
            |p| async move { p.transmit(0, 2, 8).await },
        );
        // VN ranks 0,1 on node0; 4,5 on node2: same node distance (0->2 nodes).
        let vn = run_one(
            small_xt4(8, ExecMode::VN, ContentionModel::Fluid),
            |p| async move { p.transmit(0, 4, 8).await },
        );
        assert!(vn > sn, "vn {vn} <= sn {sn}");
    }

    #[test]
    fn large_message_bandwidth_approaches_injection_limit() {
        // 64 MB at ~2 GB/s per direction: ~32 ms.
        let bytes = 64u64 << 20;
        let t = run_one(
            small_xt4(2, ExecMode::SN, ContentionModel::Fluid),
            move |p| async move { p.transmit(0, 1, bytes).await },
        );
        let bw = bytes as f64 / t;
        assert!(bw > 1.8e9 && bw < 2.1e9, "bw {bw}");
    }

    #[test]
    fn counting_and_fluid_agree_without_contention() {
        let bytes = 8u64 << 20;
        let tf = run_one(
            small_xt4(2, ExecMode::SN, ContentionModel::Fluid),
            move |p| async move { p.transmit(0, 1, bytes).await },
        );
        let tc = run_one(
            small_xt4(2, ExecMode::SN, ContentionModel::Counting),
            move |p| async move { p.transmit(0, 1, bytes).await },
        );
        assert!((tf - tc).abs() / tf < 0.01, "fluid {tf} counting {tc}");
    }

    #[test]
    fn two_vn_senders_share_injection() {
        // Both cores of node 0 send large messages to different nodes: each
        // should see ~half the injection bandwidth.
        let bytes = 16u64 << 20;
        let solo = run_one(
            small_xt4(8, ExecMode::VN, ContentionModel::Fluid),
            move |p| async move { p.transmit(0, 4, bytes).await },
        );
        let both = run_one(small_xt4(8, ExecMode::VN, ContentionModel::Fluid), {
            move |p| async move {
                let p2 = p.clone();
                let h = p.handle().clone();
                let j = h.spawn(async move { p2.transmit(1, 6, bytes).await });
                p.transmit(0, 4, bytes).await;
                j.await;
            }
        });
        assert!(
            both > 1.7 * solo && both < 2.3 * solo,
            "solo {solo} both {both}"
        );
    }

    #[test]
    fn intra_node_message_skips_network() {
        let t = run_one(
            small_xt4(8, ExecMode::VN, ContentionModel::Fluid),
            |p| async move {
                p.transmit(0, 1, 0).await;
            },
        );
        // Half the software overhead only.
        assert!(t < 2.5e-6, "{t}");
    }

    #[test]
    fn compute_streaming_contends_between_cores() {
        // One core streaming 73 MB on XT4 (7.3 GB/s socket): 10 ms.
        let w = WorkPacket::streaming(1.0, 1.0, 73.0e6);
        let solo = run_one(
            small_xt4(8, ExecMode::VN, ContentionModel::Fluid),
            move |p| async move { p.compute(0, w).await },
        );
        assert!((solo - 0.01).abs() < 1e-4, "{solo}");
        let both = run_one(small_xt4(8, ExecMode::VN, ContentionModel::Fluid), {
            move |p| async move {
                let p2 = p.clone();
                let h = p.handle().clone();
                let j = h.spawn(async move { p2.compute(1, w).await });
                p.compute(0, w).await;
                j.await;
            }
        });
        assert!((both - 0.02).abs() < 2e-4, "{both}");
    }

    #[test]
    fn compute_flops_do_not_contend() {
        let w = WorkPacket::flops_only(5.2e7, 1.0); // 10 ms on a 5.2 GF core
        let both = run_one(small_xt4(8, ExecMode::VN, ContentionModel::Fluid), {
            move |p| async move {
                let p2 = p.clone();
                let h = p.handle().clone();
                let j = h.spawn(async move { p2.compute(1, w).await });
                p.compute(0, w).await;
                j.await;
            }
        });
        // Both cores finish in the same 10 ms: flops are core-private.
        assert!((both - 1e-2).abs() < 1e-5, "{both}");
    }

    #[test]
    fn random_refs_halve_per_core_in_vn() {
        // Paper Figure 6: EP-mode per-core GUPS is half of SP.
        let refs = 1.9e6; // 0.1 s at 0.019 GUPS
        let w = WorkPacket {
            random_refs: refs,
            flop_efficiency: 1.0,
            ..Default::default()
        };
        let solo = run_one(
            small_xt4(8, ExecMode::VN, ContentionModel::Fluid),
            move |p| async move { p.compute(0, w).await },
        );
        let both = run_one(small_xt4(8, ExecMode::VN, ContentionModel::Fluid), {
            move |p| async move {
                let p2 = p.clone();
                let h = p.handle().clone();
                let j = h.spawn(async move { p2.compute(1, w).await });
                p.compute(0, w).await;
                j.await;
            }
        });
        assert!((both / solo - 2.0).abs() < 0.01, "solo {solo} both {both}");
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = Sim::new(0);
        let p = Platform::new(sim.handle(), small_xt4(8, ExecMode::VN, ContentionModel::Fluid));
        let p2 = p.clone();
        sim.spawn(async move {
            p2.transmit(0, 1, 100).await; // intra
            p2.transmit(0, 4, 200).await; // inter
        });
        sim.run();
        let s = p.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 300);
        assert_eq!(s.intra_node_messages, 1);
    }

    #[test]
    fn message_estimate_tracks_simulated_time() {
        let mut sim = Sim::new(0);
        let p = Platform::new(sim.handle(), small_xt4(2, ExecMode::SN, ContentionModel::Fluid));
        let est = p.message_time_estimate(1 << 20).as_secs_f64();
        let p2 = p.clone();
        let t = Rc::new(RefCell::new(0.0));
        let t2 = Rc::clone(&t);
        let h = sim.handle();
        sim.spawn(async move {
            p2.transmit(0, 1, 1 << 20).await;
            *t2.borrow_mut() = h.now().as_secs_f64();
        });
        sim.run();
        let sim_t = *t.borrow();
        assert!(
            (est - sim_t).abs() / sim_t < 0.25,
            "estimate {est} vs simulated {sim_t}"
        );
    }
}
