//! 3-D torus topology and dimension-ordered routing (SeaStar style).
//!
//! Nodes are laid out on an `X × Y × Z` grid with wraparound in every
//! dimension. Each node owns six directed outgoing links (±X, ±Y, ±Z).
//! Routes are dimension-ordered (X, then Y, then Z), each dimension taking
//! the shorter wrap direction — the deterministic routing the SeaStar router
//! implements.

/// A node's identifier: its index in row-major (x-fastest) order.
pub type NodeId = usize;

/// Direction of a torus link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// +X neighbour.
    XPlus,
    /// −X neighbour.
    XMinus,
    /// +Y neighbour.
    YPlus,
    /// −Y neighbour.
    YMinus,
    /// +Z neighbour.
    ZPlus,
    /// −Z neighbour.
    ZMinus,
}

impl Direction {
    /// All six directions in canonical order.
    pub const ALL: [Direction; 6] = [
        Direction::XPlus,
        Direction::XMinus,
        Direction::YPlus,
        Direction::YMinus,
        Direction::ZPlus,
        Direction::ZMinus,
    ];

    /// Canonical index 0..6 (used to number link resources).
    pub fn index(self) -> usize {
        match self {
            Direction::XPlus => 0,
            Direction::XMinus => 1,
            Direction::YPlus => 2,
            Direction::YMinus => 3,
            Direction::ZPlus => 4,
            Direction::ZMinus => 5,
        }
    }
}

/// A directed torus link: the `direction`-ward output port of `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusLink {
    /// Source node of the directed link.
    pub from: NodeId,
    /// Output direction.
    pub direction: Direction,
}

impl TorusLink {
    /// Dense index of this link in `[0, 6 * nodes)`.
    pub fn index(&self) -> usize {
        self.from * 6 + self.direction.index()
    }
}

/// A 3-D torus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus3D {
    dims: [usize; 3],
}

impl Torus3D {
    /// Build a torus with the given dimensions (each ≥ 1).
    pub fn new(dims: [usize; 3]) -> Self {
        // xtsim-lint: allow(panic-propagation, "construction-time dimension validation; runs once at platform setup, never mid-event")
        assert!(dims.iter().all(|&d| d >= 1), "torus dims must be >= 1");
        Torus3D { dims }
    }

    /// Dimensions (X, Y, Z).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Total directed link count (6 per node).
    pub fn link_count(&self) -> usize {
        self.node_count() * 6
    }

    /// Node id → (x, y, z) coordinates.
    pub fn coords(&self, node: NodeId) -> [usize; 3] {
        let [dx, dy, _dz] = self.dims;
        let x = node % dx;
        let y = (node / dx) % dy;
        let z = node / (dx * dy);
        [x, y, z]
    }

    /// (x, y, z) coordinates → node id.
    pub fn node_at(&self, c: [usize; 3]) -> NodeId {
        let [dx, dy, dz] = self.dims;
        debug_assert!(c[0] < dx && c[1] < dy && c[2] < dz);
        c[0] + c[1] * dx + c[2] * dx * dy
    }

    /// Signed shortest offset from `a` to `b` along dimension `dim`
    /// (positive = travel in the + direction).
    fn shortest_offset(&self, a: usize, b: usize, dim: usize) -> isize {
        let d = self.dims[dim] as isize;
        let fwd = (b as isize - a as isize).rem_euclid(d);
        // Prefer the +direction on ties (deterministic router behaviour).
        if fwd <= d - fwd {
            fwd
        } else {
            fwd - d
        }
    }

    /// Minimal hop count between two nodes on the torus (Manhattan distance
    /// with wraparound).
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..3)
            .map(|i| self.shortest_offset(ca[i], cb[i], i).unsigned_abs())
            .sum()
    }

    /// Dimension-ordered route from `a` to `b`: the sequence of directed
    /// links a packet traverses. Empty when `a == b`.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<TorusLink> {
        let mut links = Vec::with_capacity(self.hops(a, b));
        self.route_into(a, b, &mut links);
        links
    }

    /// Allocation-free variant of [`route`](Self::route): appends the route
    /// to `links`, which the caller clears and reuses across messages.
    pub fn route_into(&self, a: NodeId, b: NodeId, links: &mut Vec<TorusLink>) {
        let mut cur = self.coords(a);
        let target = self.coords(b);
        for dim in 0..3 {
            let off = self.shortest_offset(cur[dim], target[dim], dim);
            // `dim` ranges over 0..3, so the `_` arms are exactly dim == 2 —
            // no unreachable! needed on an event-dispatch route.
            let (dir, step) = match (dim, off >= 0) {
                (0, true) => (Direction::XPlus, 1isize),
                (0, false) => (Direction::XMinus, -1),
                (1, true) => (Direction::YPlus, 1),
                (1, false) => (Direction::YMinus, -1),
                (_, true) => (Direction::ZPlus, 1),
                (_, false) => (Direction::ZMinus, -1),
            };
            for _ in 0..off.unsigned_abs() {
                let from = self.node_at(cur);
                links.push(TorusLink {
                    from,
                    direction: dir,
                });
                let d = self.dims[dim] as isize;
                cur[dim] = ((cur[dim] as isize + step).rem_euclid(d)) as usize;
            }
        }
        debug_assert_eq!(cur, target);
    }

    /// Average minimal hop count over random node pairs — the expected
    /// distance `(X + Y + Z) / 4` for even dimensions (used by the analytic
    /// latency model's documentation and tests).
    pub fn mean_hops(&self) -> f64 {
        self.dims
            .iter()
            .map(|&d| {
                // Mean shortest wrap distance on a ring of size d.
                let d = d as f64;
                if d <= 1.0 {
                    0.0
                } else {
                    // Sum over offsets 0..d of min(k, d-k), divided by d.
                    let half = (d / 2.0).floor();
                    let sum = if (d as usize).is_multiple_of(2) {
                        half * half
                    } else {
                        half * (half + 1.0)
                    };
                    sum / d
                }
            })
            .sum()
    }

    /// Bisection link count: number of directed links crossing the midplane
    /// of the longest dimension (both directions). Used by the analytic
    /// global-traffic model.
    pub fn bisection_links(&self) -> usize {
        let longest = *self.dims.iter().max().expect("3 dims");
        let cross_section: usize = self.node_count() / longest;
        // A torus cut crosses twice (wraparound), each with directed links
        // both ways: 4 directed links per cross-section node... but for odd
        // or size-1 dimensions fall back to at least one crossing.
        if longest >= 2 {
            cross_section * 4
        } else {
            cross_section
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = Torus3D::new([3, 4, 5]);
        for n in 0..t.node_count() {
            assert_eq!(t.node_at(t.coords(n)), n);
        }
    }

    #[test]
    fn hops_matches_route_length() {
        let t = Torus3D::new([4, 3, 5]);
        for a in [0usize, 7, 33, 59] {
            for b in [0usize, 1, 12, 58] {
                let route = t.route(a, b);
                assert_eq!(route.len(), t.hops(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn route_is_contiguous_and_ends_at_target() {
        let t = Torus3D::new([5, 5, 5]);
        let (a, b) = (3, 117);
        let route = t.route(a, b);
        let mut cur = a;
        for link in &route {
            assert_eq!(link.from, cur);
            let c = t.coords(cur);
            let dims = t.dims();
            cur = match link.direction {
                Direction::XPlus => t.node_at([(c[0] + 1) % dims[0], c[1], c[2]]),
                Direction::XMinus => t.node_at([(c[0] + dims[0] - 1) % dims[0], c[1], c[2]]),
                Direction::YPlus => t.node_at([c[0], (c[1] + 1) % dims[1], c[2]]),
                Direction::YMinus => t.node_at([c[0], (c[1] + dims[1] - 1) % dims[1], c[2]]),
                Direction::ZPlus => t.node_at([c[0], c[1], (c[2] + 1) % dims[2]]),
                Direction::ZMinus => t.node_at([c[0], c[1], (c[2] + dims[2] - 1) % dims[2]]),
            };
        }
        assert_eq!(cur, b);
    }

    #[test]
    fn wraparound_takes_short_way() {
        let t = Torus3D::new([10, 1, 1]);
        // 0 -> 9 is 1 hop backwards, not 9 forwards.
        assert_eq!(t.hops(0, 9), 1);
        assert_eq!(t.route(0, 9)[0].direction, Direction::XMinus);
        // 0 -> 5 on a ring of 10: tie, prefer +.
        assert_eq!(t.hops(0, 5), 5);
        assert_eq!(t.route(0, 5)[0].direction, Direction::XPlus);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus3D::new([4, 4, 4]);
        assert!(t.route(21, 21).is_empty());
        assert_eq!(t.hops(21, 21), 0);
    }

    #[test]
    fn link_indices_are_dense_and_unique() {
        let t = Torus3D::new([3, 3, 3]);
        let mut seen = vec![false; t.link_count()];
        for n in 0..t.node_count() {
            for d in Direction::ALL {
                let l = TorusLink {
                    from: n,
                    direction: d,
                };
                assert!(l.index() < t.link_count());
                assert!(!seen[l.index()]);
                seen[l.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_hops_even_ring() {
        // Ring of 4: distances from any node: 0,1,2,1 -> mean 1.0.
        let t = Torus3D::new([4, 1, 1]);
        assert!((t.mean_hops() - 1.0).abs() < 1e-12);
        // 4x4x4: 3.0 total.
        let t = Torus3D::new([4, 4, 4]);
        assert!((t.mean_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_hops_matches_exhaustive() {
        let t = Torus3D::new([4, 3, 5]);
        let n = t.node_count();
        let total: usize = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| t.hops(a, b))
            .sum();
        let exact = total as f64 / (n * n) as f64;
        assert!(
            (t.mean_hops() - exact).abs() < 1e-9,
            "analytic {} vs exhaustive {}",
            t.mean_hops(),
            exact
        );
    }

    #[test]
    fn bisection_links_cube() {
        let t = Torus3D::new([8, 8, 8]);
        // Cross-section 64 nodes, two cuts, both directions: 256.
        assert_eq!(t.bisection_links(), 256);
    }
}
