#![forbid(unsafe_code)]
//! # xtsim-net — SeaStar-style interconnect and node simulation
//!
//! Builds the simulated Cray XT platform: a 3-D torus with dimension-ordered
//! routing ([`Torus3D`]), per-node NIC stations (serialized in VN mode),
//! injection/ejection ports, and per-socket memory controllers. Exposes the
//! two primitive operations — [`Platform::compute`] and
//! [`Platform::transmit`] — that `xtsim-mpi` builds MPI semantics on.

#![warn(missing_docs)]

pub mod analytic;
mod platform;
pub mod torus;

pub use analytic::{AnalyticNet, CollectiveShape};
pub use platform::{ContentionModel, Placement, Platform, PlatformConfig, Rank, TrafficStats};
pub use torus::{Direction, NodeId, Torus3D, TorusLink};
