//! Closed-form (contention-free) wire model for the sharded parallel mode.
//!
//! The fluid [`crate::Platform`] shares one global set of link pools across
//! every rank, which is exactly what a partitioned world cannot have: two
//! shards may not contend for one `FluidPool` without re-serializing. The
//! parallel mode therefore prices each message analytically — the same
//! latency/bandwidth/protocol formula as
//! [`crate::Platform::message_time_estimate`], but with the *actual* torus
//! hop distance of the pair instead of the mean — so a message's cost is a
//! pure function of `(src, dst, bytes)`, independent of which shard computes
//! it and of everything else in flight. That purity is what makes shard
//! results partition- and thread-invariant.
//!
//! The model also derives the conservative lookahead: no cross-node message
//! can complete in less than [`MachineSpec::min_remote_latency_s`], and the
//! analytic collectives split that bound between their gather and release
//! legs, so [`AnalyticNet::lookahead`] is half of it.

use xtsim_machine::{fit_dims, ExecMode, MachineSpec};

use crate::torus::Torus3D;
use crate::Rank;
use xtsim_des::SimDuration;

/// Which analytic collective to price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollectiveShape {
    /// Zero-payload dissemination barrier.
    Barrier,
    /// Recursive-doubling allreduce carrying `bytes` per rank.
    Allreduce {
        /// Payload per rank, bytes.
        bytes: u64,
    },
}

/// Contention-free network model over a compact torus partition.
#[derive(Debug, Clone)]
pub struct AnalyticNet {
    spec: MachineSpec,
    mode: ExecMode,
    torus: Torus3D,
    ranks: usize,
    ranks_per_node: usize,
}

impl AnalyticNet {
    /// Model a job of `ranks` ranks on `spec` in `mode`, block-placed on
    /// the smallest near-cubic torus that holds them (same policy as the
    /// fluid platform's default placement).
    pub fn new(spec: MachineSpec, mode: ExecMode, ranks: usize) -> AnalyticNet {
        assert!(ranks >= 1, "need at least one rank");
        let rpn = spec.ranks_per_node(mode);
        let nodes = ranks.div_ceil(rpn);
        let torus = Torus3D::new(fit_dims(nodes));
        AnalyticNet {
            spec,
            mode,
            torus,
            ranks,
            ranks_per_node: rpn,
        }
    }

    /// Number of ranks in the job.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Execution mode (SN/VN).
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The torus partition backing the job.
    pub fn torus(&self) -> &Torus3D {
        &self.torus
    }

    /// Node hosting `rank` (block placement).
    pub fn node_of(&self, rank: Rank) -> usize {
        rank / self.ranks_per_node
    }

    fn overhead_s(&self) -> f64 {
        let n = &self.spec.nic;
        let o_us = n.sw_overhead_us
            + match self.mode {
                ExecMode::SN => 0.0,
                ExecMode::VN => n.vn_extra_overhead_us,
            };
        o_us * 1e-6
    }

    fn wire_bw(&self) -> f64 {
        let n = &self.spec.nic;
        (n.injection_bw_gbs * 1e9 / 2.0).min(n.link_bw_gbs * 1e9)
    }

    fn protocol_extra_s(&self, bytes: u64) -> f64 {
        if bytes > self.spec.nic.eager_threshold_bytes {
            self.spec.nic.rendezvous_latency_us * 1e-6
        } else {
            0.0
        }
    }

    /// Completion time of one message from `src` to `dst`: software
    /// overhead, per-hop router latency along the actual route, serialized
    /// payload at the injection/link bottleneck, and the rendezvous
    /// handshake beyond the eager threshold. Same-node pairs pay the memcpy
    /// bandwidth and no hops.
    pub fn message_time(&self, src: Rank, dst: Rank, bytes: u64) -> SimDuration {
        let n = &self.spec.nic;
        let (src_node, dst_node) = (self.node_of(src), self.node_of(dst));
        let t = if src_node == dst_node {
            self.overhead_s() + bytes as f64 / (n.memcpy_bw_gbs * 1e9) + self.protocol_extra_s(bytes)
        } else {
            let hops = self.torus.hops(src_node, dst_node) as f64;
            self.overhead_s()
                + hops * n.per_hop_ns * 1e-9
                + bytes as f64 / self.wire_bw()
                + self.protocol_extra_s(bytes)
        };
        SimDuration::from_secs_f64(t)
    }

    /// Sender-side CPU occupancy of a send: the software overhead plus any
    /// rendezvous handshake. The payload itself streams from the NIC, so
    /// the sender's task resumes well before the message lands.
    pub fn send_occupancy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.overhead_s() + self.protocol_extra_s(bytes))
    }

    /// The machine-derived minimum cross-node message latency.
    pub fn min_remote_latency(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.spec.min_remote_latency_s(self.mode))
    }

    /// Conservative lookahead for the parallel mode: half the minimum
    /// remote latency. Halving guarantees every analytic collective
    /// duration (floored at the full minimum latency) covers both the
    /// contribution leg *and* the release leg of the sharded hierarchical
    /// gate, each of which must span at least one lookahead.
    pub fn lookahead(&self) -> SimDuration {
        SimDuration::from_ps((self.min_remote_latency().as_ps() / 2).max(1))
    }

    /// Analytic duration of a collective over `p` ranks, measured from the
    /// last arrival to the release instant: `ceil(log2 p)` dissemination
    /// rounds of one mean-distance message (plus payload serialization for
    /// allreduce). Floored at the full minimum remote latency so the
    /// duration always covers two lookaheads (see [`AnalyticNet::lookahead`]).
    pub fn collective_time(&self, p: usize, shape: CollectiveShape) -> SimDuration {
        let rounds = (p.max(1) as f64).log2().ceil().max(1.0);
        let t0 = self.overhead_s() + self.torus.mean_hops() * self.spec.nic.per_hop_ns * 1e-9;
        let per_round = match shape {
            CollectiveShape::Barrier => t0,
            CollectiveShape::Allreduce { bytes } => {
                t0 + bytes as f64 / self.wire_bw() + self.protocol_extra_s(bytes)
            }
        };
        let floor = self.spec.min_remote_latency_s(self.mode);
        SimDuration::from_secs_f64((rounds * per_round).max(floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContentionModel, Placement, Platform, PlatformConfig};
    use xtsim_machine::presets;

    fn net(ranks: usize) -> AnalyticNet {
        AnalyticNet::new(presets::xt4(), ExecMode::SN, ranks)
    }

    #[test]
    fn matches_platform_estimate_at_mean_distance() {
        // For a pair at (roughly) mean hop distance the analytic price must
        // track the fluid platform's estimate: same formula, same constants.
        let n = net(64);
        let sim = xtsim_des::Sim::new(0);
        let p = Platform::new(
            sim.handle(),
            PlatformConfig {
                spec: presets::xt4(),
                mode: ExecMode::SN,
                ranks: 64,
                placement: Placement::Block,
                contention: ContentionModel::Fluid,
            },
        );
        let est = p.message_time_estimate(4096).as_secs_f64();
        let mut best = f64::MAX;
        for dst in 1..64 {
            let t = n.message_time(0, dst, 4096).as_secs_f64();
            best = best.min((t - est).abs() / est);
        }
        assert!(best < 0.10, "no pair within 10% of the mean estimate: {best}");
    }

    #[test]
    fn message_time_is_symmetric_and_monotone_in_bytes() {
        let n = net(128);
        for (a, b) in [(0, 127), (3, 77), (12, 13)] {
            assert_eq!(n.message_time(a, b, 1024), n.message_time(b, a, 1024));
            assert!(n.message_time(a, b, 1 << 20) > n.message_time(a, b, 1024));
        }
    }

    #[test]
    fn lookahead_is_a_lower_bound_on_remote_messages() {
        let n = AnalyticNet::new(presets::xt4(), ExecMode::VN, 256);
        let la = n.lookahead();
        assert!(la.as_ps() > 0);
        for dst in 0..256 {
            if n.node_of(dst) != n.node_of(0) {
                assert!(n.message_time(0, dst, 0) >= la + la, "dst {dst}");
            }
        }
    }

    #[test]
    fn collective_time_covers_two_lookaheads() {
        for ranks in [1usize, 2, 16, 1024] {
            let n = net(ranks.max(1));
            let la = n.lookahead();
            for shape in [
                CollectiveShape::Barrier,
                CollectiveShape::Allreduce { bytes: 64 },
            ] {
                let d = n.collective_time(ranks, shape);
                assert!(d >= la + la, "{ranks} {shape:?}");
            }
        }
    }

    #[test]
    fn same_node_pairs_use_memcpy_path() {
        let n = AnalyticNet::new(presets::xt4(), ExecMode::VN, 8);
        assert_eq!(n.node_of(0), n.node_of(1));
        assert!(n.message_time(0, 1, 1 << 20) < n.message_time(0, 2, 1 << 20));
    }
}
