#![forbid(unsafe_code)]
//! Offline stand-in for `rand`, scoped to what this workspace uses:
//! [`RngCore`], [`Rng::gen_range`] over half-open ranges, [`SeedableRng`]'s
//! `seed_from_u64`, and [`seq::SliceRandom::shuffle`]. The concrete generator
//! lives in the sibling `rand_chacha` shim.
//!
//! Not bit-compatible with crates.io `rand` — every consumer in this
//! repository asserts distributional/qualitative properties, not exact
//! streams, and the golden figures are regenerated against this shim.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Multiply-shift bounded draw; bias is < 2^-32 per draw,
                // far below what any consumer here can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience sampling methods over a bit source.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice shuffling and selection.
pub mod seq {
    use super::RngCore;

    /// Subset of rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chosen element, `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let j = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(j)
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut r = Lcg(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
