#![forbid(unsafe_code)]
//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream generator
//! (D. J. Bernstein's ChaCha with 8 double-rounds) behind the shim `rand`
//! traits. Deterministic, `Clone`, with independent streams per seed — the
//! properties the DES engine's `Sim::rng(stream)` API depends on.
//!
//! The key schedule (`seed_from_u64` via SplitMix64 expansion) differs from
//! crates.io `rand_chacha`, so streams are not bit-compatible with it; all
//! in-repo consumers assert distributional properties only.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + nonce words (state words 4..=13 are the key, 14..=15 the nonce).
    key: [u32; 8],
    nonce: [u32; 2],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Construct from a full 32-byte key (nonce zero).
    pub fn from_key(key: [u32; 8]) -> ChaCha8Rng {
        ChaCha8Rng {
            key,
            nonce: [0, 0],
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.nonce[0],
            self.nonce[1],
        ];
        let init = s;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(init) {
            *o = o.wrapping_add(i);
        }
        self.buf = s;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: the mean of many unit draws sits near 0.5.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
