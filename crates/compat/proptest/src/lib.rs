#![forbid(unsafe_code)]
//! Offline stand-in for `proptest`, covering the macro surface this
//! workspace's property tests use: the [`proptest!`] block with
//! `#![proptest_config(..)]`, `arg in strategy` bindings, range / tuple /
//! array / `prop::collection::vec` strategies, [`Strategy::prop_map`], and
//! the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the sampled inputs so the failure is still reproducible (case seeds
//! are derived deterministically from the test's module path and case
//! index).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::ops::Range;

/// Runner configuration (`cases` = iterations per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property check (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-case RNG.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].sample(rng))
    }
}

/// Full-range / canonical-range generation, behind [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Canonical unit-interval draw (full-bit-pattern floats are never
        // what a property test wants).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy form of [`Arbitrary`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(elem, len)` — vectors of `elem` draws.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Optional-value strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(elem)` — `None` about a quarter of the time, `Some(elem)` otherwise
    /// (mirrors upstream proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The import surface `use proptest::prelude::*` provides.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                va,
                vb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fail the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                va
            )));
        }
    }};
}

/// The `proptest! { ... }` block: expands each contained `fn` into a `#[test]`
/// that samples its `arg in strategy` bindings and runs the body repeatedly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; expands one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = [
                    $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                ]
                .join(", ");
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("case {} failed: {}\n  inputs: {}", __case, e, __inputs);
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 5usize..10, f in -2.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for e in &v {
                prop_assert!(*e < 100);
            }
        }

        #[test]
        fn tuples_arrays_and_map(
            pair in (0u32..4, -1.0f64..1.0),
            dims in ([1usize..8, 1usize..8, 1usize..8]).prop_map(|d| d),
            s in any::<u64>(),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!(dims.iter().all(|d| (1..8).contains(d)));
            let _ = s;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
