#![forbid(unsafe_code)]
//! Offline stand-in for `serde`, scoped to what this workspace needs.
//!
//! The container this repository builds in has no crates.io access, so the
//! real serde (and its derive machinery) cannot be compiled. This shim keeps
//! the same import surface — `use serde::{Serialize, Deserialize}` — but the
//! traits are backed by a concrete JSON [`Value`] model instead of serde's
//! generic serializer/deserializer pair. Structs and enums opt in with the
//! [`impl_serde_struct!`] / [`impl_serde_unit_enum!`] macros instead of
//! `#[derive(..)]`.
//!
//! Objects use a `BTreeMap`, so every serialized form is *canonical*: field
//! order in the source struct (or in parsed JSON text) never changes the
//! output bytes. The sweep-engine cache keys rely on this.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Numbers keep an integer/float distinction so `u64` fields
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (no decimal point in the serialized form).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with canonically (lexicographically) ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (ints widen to f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats with zero fraction convert).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(*f as i64),
            _ => None,
        }
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i64) }
        }
    )*};
}
impl_value_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Serialization/deserialization error with a breadcrumb context path.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// New error from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error { msg: m.into() }
    }

    /// Prefix the error with a field/element context.
    pub fn context(self, ctx: &str) -> Error {
        Error {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the JSON model.
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the JSON model.
pub trait Deserialize: Sized {
    /// Parse `self` out of a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        // Values above i64::MAX do not occur in this workspace.
        Value::Int(*self as i64)
    }
}
impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_i64()
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| Error::msg("expected u64"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .enumerate()
            .map(|(i, e)| T::from_value(e).map_err(|e| e.context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
        if arr.len() != N {
            return Err(Error::msg(format!("expected array of {N}")));
        }
        let mut out = [T::default(); N];
        for (slot, e) in out.iter_mut().zip(arr) {
            *slot = T::from_value(e)?;
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::msg("expected pair"))?;
        if arr.len() != 2 {
            return Err(Error::msg("expected 2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::msg("expected triple"))?;
        if arr.len() != 3 {
            return Err(Error::msg("expected 3-element array"));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, e)| T::from_value(e).map(|t| (k.clone(), t)))
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------------- macros

/// Implement `Serialize`/`Deserialize` for a struct with named fields, as a
/// JSON object keyed by field name (the replacement for `#[derive(..)]`).
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let mut m = ::std::collections::BTreeMap::new();
                $(m.insert(stringify!($field).to_string(), $crate::Serialize::to_value(&self.$field));)+
                $crate::Value::Object(m)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                let obj = v.as_object().ok_or_else(|| {
                    $crate::Error::msg(concat!("expected object for ", stringify!($ty)))
                })?;
                ::std::result::Result::Ok(Self {
                    $($field: $crate::Deserialize::from_value(
                        obj.get(stringify!($field)).unwrap_or(&$crate::Value::Null),
                    )
                    .map_err(|e| e.context(concat!(stringify!($ty), ".", stringify!($field))))?,)+
                })
            }
        }
    };
}

/// Implement `Serialize`/`Deserialize` for a fieldless enum, as the variant
/// name string (matching serde's external tagging of unit variants).
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let s = match self {
                    $(<$ty>::$variant => stringify!($variant),)+
                };
                $crate::Value::Str(s.to_string())
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => ::std::result::Result::Ok(<$ty>::$variant),)+
                    _ => ::std::result::Result::Err($crate::Error::msg(concat!(
                        "expected variant of ",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_keys_are_canonical() {
        let mut a = BTreeMap::new();
        a.insert("zeta".to_string(), Value::Int(1));
        a.insert("alpha".to_string(), Value::Int(2));
        let keys: Vec<&String> = a.keys().collect();
        assert_eq!(keys, ["alpha", "zeta"]);
    }

    #[test]
    fn option_roundtrip() {
        let v: Option<f64> = Some(1.5);
        assert_eq!(Option::<f64>::from_value(&v.to_value()).unwrap(), v);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&n.to_value()).unwrap(), n);
    }

    #[test]
    fn tuple_and_array_roundtrip() {
        let t = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [3usize, 4, 5];
        assert_eq!(<[usize; 3]>::from_value(&a.to_value()).unwrap(), a);
    }
}
