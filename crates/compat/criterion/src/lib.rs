#![forbid(unsafe_code)]
//! Offline stand-in for `criterion`: enough API for this workspace's bench
//! targets (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros). Each benchmark runs a short fixed schedule (1 warmup + up to 16
//! timed iterations, capped at ~200 ms) and prints **median** wall-clock time
//! plus derived throughput — no statistics engine, no HTML reports.
//!
//! Environment knobs (used by `scripts/bench.sh`):
//!
//! * `XTSIM_BENCH_ONESHOT=1` — skip the warmup and run exactly one timed
//!   iteration per benchmark (for capturing baselines of very slow benches).

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirror of criterion's CLI hook; accepts and ignores arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Display label for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label from the parameter's `Display` form.
    pub fn from_parameter(p: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// Label from a function name and a parameter.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{p}"),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted and ignored (the shim's schedule is fixed).
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Run one benchmark against an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.label, &b);
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.samples.is_empty() {
            println!("{}/{id}: no iterations", self.name);
            return;
        }
        let median = b.median().as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3e} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} MB/s", n as f64 / median / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.3} ms/iter (median of {} iters){rate}",
            self.name,
            median * 1e3,
            b.samples.len()
        );
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `f` on the shim schedule: one warmup, then timed iterations until
    /// 16 have run or ~200 ms has elapsed. With `XTSIM_BENCH_ONESHOT=1` the
    /// warmup is skipped and exactly one timed iteration runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if std::env::var_os("XTSIM_BENCH_ONESHOT").is_some_and(|v| v == "1") {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            return;
        }
        black_box(f());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        while self.samples.len() < 16 && start.elapsed() < budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Median of the timed iterations (zero when none ran).
    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s.get(s.len() / 2).copied().unwrap_or(Duration::ZERO)
    }
}

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
