#![forbid(unsafe_code)]
//! Offline stand-in for `serde_json`: JSON text in and out of the shim
//! [`serde::Value`] model.
//!
//! Guarantees the sweep-engine cache and golden files rely on:
//!
//! * **Canonical output** — object keys are emitted in lexicographic order
//!   (the `Value` object is a `BTreeMap`), so serializing the same data
//!   always produces the same bytes regardless of construction order.
//! * **Round-trip floats** — floats print via Rust's shortest-round-trip
//!   `{}` formatting, with a trailing `.0` forced onto integral floats so
//!   the int/float distinction survives reparsing.

pub use serde::{Error, Value};
use serde::{Deserialize, Serialize};

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into the JSON model.
pub fn to_value<T: Serialize>(t: &T) -> Result<Value, Error> {
    Ok(t.to_value())
}

/// Rebuild a typed value from the JSON model.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

// ------------------------------------------------------------------ writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, e, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, e, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/inf; mirror serde_json's `null`.
        out.push_str("null");
    } else {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep the float/int distinction in the text form.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consume exactly four hex digits (the body of a `\uXXXX` escape).
    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("eof in \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u"))?;
        self.pos += 4;
        Ok(code)
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("eof in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = match code {
                                // High surrogate: must be followed by a low
                                // surrogate escape; the pair combines into
                                // one supplementary-plane scalar.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos..self.pos + 2)
                                        != Some(&b"\\u"[..])
                                    {
                                        return Err(Error::msg(
                                            "unexpected end of surrogate pair in \\u escape",
                                        ));
                                    }
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(Error::msg(
                                            "lone leading surrogate in \\u escape",
                                        ));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).expect("surrogate pair is a valid scalar")
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error::msg(
                                        "lone trailing surrogate in \\u escape",
                                    ))
                                }
                                c => char::from_u32(c).expect("non-surrogate BMP code is a scalar"),
                            };
                            out.push(ch);
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad float '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::msg(format!("bad int '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"b":[1,2.5,null,true],"a":"x\ny"}"#;
        let v = parse(text).unwrap();
        let out = to_string(&v).unwrap();
        // Canonical: keys sorted.
        assert_eq!(out, r#"{"a":"x\ny","b":[1,2.5,null,true]}"#);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn floats_keep_their_floatness() {
        let v = Value::Float(2.0);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = parse(r#"{"k":[{"x":1}],"s":"hi"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<f64> = from_str("[1.5, 2, 3.25]").unwrap();
        assert_eq!(xs, vec![1.5, 2.0, 3.25]);
    }
}
