//! String escaping/parsing conformance: `\uXXXX` surrogate pairs must
//! combine into one scalar (and lone surrogates must be rejected), control
//! characters must escape on output, and arbitrary Unicode text must survive
//! a serialize → parse round trip unchanged.

use proptest::prelude::*;
use serde::Value;

fn parse_str(json: &str) -> String {
    let v: Value = serde_json::from_str(json).expect("parses");
    v.as_str().expect("string value").to_string()
}

/// JSON-escape `s` the hard way: every char as `\uXXXX` escapes of its
/// UTF-16 code units, so astral chars exercise the surrogate-pair path.
fn utf16_escaped(s: &str) -> String {
    let mut out = String::from("\"");
    for unit in s.encode_utf16() {
        out.push_str(&format!("\\u{unit:04x}"));
    }
    out.push('"');
    out
}

#[test]
fn surrogate_pair_decodes_to_one_scalar() {
    // U+1D11E MUSICAL SYMBOL G CLEF and U+1F600 GRINNING FACE.
    assert_eq!(parse_str(r#""\ud834\udd1e""#), "\u{1d11e}");
    assert_eq!(parse_str(r#""\uD83D\uDE00""#), "\u{1f600}");
    // Pair embedded in surrounding text, and upper-case hex digits.
    assert_eq!(parse_str(r#""a\ud834\udd1ez""#), "a\u{1d11e}z");
}

#[test]
fn lone_surrogates_are_rejected() {
    for bad in [
        r#""\ud834""#,          // high surrogate at end of string
        r#""\ud834x""#,         // high surrogate followed by plain text
        r#""\ud834\n""#,        // high surrogate followed by another escape
        r#""\ud834\ud834""#,    // high surrogate followed by another high
        r#""\udd1e""#,          // low surrogate alone
        r#""x\udc00y""#,        // low surrogate mid-string
    ] {
        assert!(
            serde_json::from_str::<Value>(bad).is_err(),
            "accepted invalid surrogate usage: {bad}"
        );
    }
}

#[test]
fn bmp_escapes_still_decode() {
    assert_eq!(parse_str(r#""\u0041\u00e9\u4e2d""#), "Aé中");
    assert_eq!(parse_str(r#""\u0000""#), "\u{0}");
}

#[test]
fn control_chars_escape_on_output_and_roundtrip() {
    let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
    let json = serde_json::to_string(&s).unwrap();
    // Everything below U+0020 must be escaped in the output.
    assert!(json.chars().all(|c| c >= ' '), "unescaped control char in {json:?}");
    assert_eq!(parse_str(&json), s);
}

proptest! {
    #[test]
    fn arbitrary_unicode_roundtrips(cps in prop::collection::vec(0u32..0x110000, 0..48)) {
        // Map the raw draws onto valid scalars (skipping the surrogate gap).
        let s: String = cps
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        let json = serde_json::to_string(&s).unwrap();
        let back: String = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &s);
    }

    #[test]
    fn utf16_escaped_form_parses_to_original(cps in prop::collection::vec(0u32..0x110000, 1..24)) {
        let s: String = cps
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        let back = parse_str(&utf16_escaped(&s));
        prop_assert_eq!(&back, &s);
    }
}
