#![forbid(unsafe_code)]
//! Offline stand-in for `rayon`, scoped to `slice.par_chunks_mut(n)
//! .enumerate().for_each(f)` — the one pattern this workspace's kernels use.
//! Work is executed on `std::thread::scope` workers pulling chunks from a
//! shared atomic index, so disjoint `&mut` chunks are processed genuinely in
//! parallel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The import surface `use rayon::prelude::*` provides.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Parallel mutable-slice operations.
pub trait ParallelSliceMut<T: Send> {
    /// Split into chunks of `size` (last may be shorter) for parallel use.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate {
            chunks: self.chunks,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Send + Sync,
    {
        self.enumerate().for_each(move |(_, c)| f(c));
    }
}

/// Enumerated parallel chunk iterator.
pub struct ParEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParEnumerate<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Send + Sync,
    {
        type Slot<'b, U> = Mutex<Option<(usize, &'b mut [U])>>;
        let items: Vec<Slot<'a, T>> = self
            .chunks
            .into_iter()
            .enumerate()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(items.len().max(1));
        if workers <= 1 {
            for slot in &items {
                if let Some(pair) = slot.lock().unwrap().take() {
                    f(pair);
                }
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if let Some(pair) = items[i].lock().unwrap().take() {
                        f(pair);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_the_slice_once() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(bi, c)| {
            for (i, e) in c.iter_mut().enumerate() {
                *e = (bi * 64 + i) as u64;
            }
        });
        for (i, e) in v.iter().enumerate() {
            assert_eq!(*e, i as u64);
        }
    }

    #[test]
    fn for_each_without_enumerate() {
        let mut v = vec![1u32; 100];
        v.par_chunks_mut(7).for_each(|c| {
            for e in c {
                *e += 1;
            }
        });
        assert!(v.iter().all(|&e| e == 2));
    }
}
